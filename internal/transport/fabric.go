package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptivecast/internal/topology"
)

// FabricOptions tunes the in-process transport.
type FabricOptions struct {
	// Seed drives the loss sampling; 0 uses 1 (keep runs reproducible).
	Seed int64
	// Latency delays every delivery (0 = immediate).
	Latency time.Duration
	// QueueSize is each endpoint's inbound buffer (default 1024). When a
	// queue is full the frame is dropped — the model tolerates loss by
	// construction, and the drop is counted in Stats.
	QueueSize int
	// SendCost charges the sender this many bytes of memory copy per
	// transport call (Send/SendN/SendFrames each count as one flush),
	// into a per-link buffer held under a per-link lock — the shape of
	// the kernel socket-buffer copy a write(2) pays on a real NIC, where
	// flushes to different peers overlap but flushes on the same
	// connection serialize. 0 (the default) keeps sends free. Saturation
	// benchmarks set this; without it the fabric has no backpressure for
	// a pipelined sender to win against.
	SendCost int
}

func (o FabricOptions) withDefaults() FabricOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.QueueSize == 0 {
		o.QueueSize = 1024
	}
	return o
}

// FabricStats counts fabric-level events.
type FabricStats struct {
	Sent       int
	Lost       int // dropped by injected probabilistic loss
	FaultDrops int // dropped by a hard fault: a Down link or a partition
	Overflows  int // dropped because a receive queue was full
}

// LinkModel describes one *direction* of a link. The zero value is a
// perfect wire: no loss, fabric-default latency, no jitter, up.
type LinkModel struct {
	// Loss is the per-copy drop probability in [0,1].
	Loss float64
	// Latency overrides FabricOptions.Latency for this direction when > 0.
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per flush (frames
	// that share a wire flush share an arrival, so they share the draw).
	Jitter time.Duration
	// Down drops every copy while set — the flapping-link control. Unlike
	// Loss it is a hard outage, counted in FaultDrops rather than Lost.
	Down bool
}

// dlink keys the per-direction model map.
type dlink struct{ from, to topology.NodeID }

// Fabric is an in-process "network": it owns one endpoint per node and
// applies an injectable per-direction LinkModel (loss, latency, jitter,
// outages) plus runtime partition control, giving the live node stack
// the same probabilistic environment the simulator models — and worse.
type Fabric struct {
	mu        sync.Mutex
	opts      FabricOptions
	rng       *rand.Rand
	endpoints map[topology.NodeID]*fabricEndpoint
	models    map[dlink]LinkModel
	// partition maps nodes to a group index; nil means no partition.
	// Unlisted nodes form their own implicit group (-1).
	partition map[topology.NodeID]int
	stats     FabricStats
	closed    bool
	// costSrc is the SendCost-sized source block every simulated kernel
	// copy reads from (nil when sends are free).
	costSrc []byte
}

// NewFabric returns an empty fabric.
func NewFabric(opts FabricOptions) *Fabric {
	opts = opts.withDefaults()
	f := &Fabric{
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		endpoints: make(map[topology.NodeID]*fabricEndpoint),
		models:    make(map[dlink]LinkModel),
	}
	if opts.SendCost > 0 {
		f.costSrc = make([]byte, opts.SendCost)
	}
	return f
}

// SetLoss injects a loss probability for the (undirected) link a—b. It
// writes both directions of the LinkModel, so legacy symmetric-loss
// callers and asymmetric SetLinkModel callers share one datapath; any
// latency/jitter/outage already set on either direction is preserved.
func (f *Fabric) SetLoss(a, b topology.NodeID, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("transport: loss %v outside [0,1]", p)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range [2]dlink{{a, b}, {b, a}} {
		m := f.models[d]
		m.Loss = p
		f.models[d] = m
	}
	return nil
}

// SetLinkModel installs the model for the *directed* link from→to,
// replacing that direction entirely (the reverse direction is untouched).
func (f *Fabric) SetLinkModel(from, to topology.NodeID, m LinkModel) error {
	if m.Loss < 0 || m.Loss > 1 {
		return fmt.Errorf("transport: loss %v outside [0,1]", m.Loss)
	}
	if m.Latency < 0 || m.Jitter < 0 {
		return fmt.Errorf("transport: negative latency/jitter")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.models[dlink{from, to}] = m
	return nil
}

// LinkModelFor returns the current model for the directed link from→to
// (the zero model if none was set).
func (f *Fabric) LinkModelFor(from, to topology.NodeID) LinkModel {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.models[dlink{from, to}]
}

// SetLinkDown marks both directions of a—b down (true) or up (false)
// without disturbing the rest of their models — the flapping-link switch.
func (f *Fabric) SetLinkDown(a, b topology.NodeID, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range [2]dlink{{a, b}, {b, a}} {
		m := f.models[d]
		m.Down = down
		f.models[d] = m
	}
}

// SetPartition splits the fabric into the given groups: traffic between
// nodes in different groups (or between a listed node and an unlisted
// one) is dropped and counted in FaultDrops. Unlisted nodes form their
// own implicit group, so SetPartition([]NodeID{3}) isolates node 3.
// Calling with no groups heals the partition.
func (f *Fabric) SetPartition(groups ...[]topology.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(groups) == 0 {
		f.partition = nil
		return
	}
	f.partition = make(map[topology.NodeID]int)
	for g, members := range groups {
		for _, id := range members {
			f.partition[id] = g
		}
	}
}

// severed reports whether the current partition blocks from→to.
// Callers hold f.mu.
func (f *Fabric) severed(from, to topology.NodeID) bool {
	if f.partition == nil {
		return false
	}
	gf, okf := f.partition[from]
	gt, okt := f.partition[to]
	if !okf {
		gf = -1
	}
	if !okt {
		gt = -1
	}
	return gf != gt
}

// delayFor computes the delivery delay for one flush on from→to: the
// model's latency override (else the fabric default) plus one uniform
// jitter draw. Callers hold f.mu (the rng is not safe for concurrent use).
func (f *Fabric) delayFor(m LinkModel) time.Duration {
	delay := f.opts.Latency
	if m.Latency > 0 {
		delay = m.Latency
	}
	if m.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(m.Jitter)))
	}
	return delay
}

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() FabricStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Endpoint returns (creating on first use) the transport endpoint for id.
func (f *Fabric) Endpoint(id topology.NodeID) Transport {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep, ok := f.endpoints[id]; ok {
		return ep
	}
	ep := &fabricEndpoint{
		fabric: f,
		id:     id,
		queue:  make(chan inboundFrame, f.opts.QueueSize),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if f.opts.SendCost > 0 {
		ep.links = make(map[topology.NodeID]*linkBuf)
	}
	//adaptivelint:goroutine stop=ep.stop
	go ep.receiveLoop()
	f.endpoints[id] = ep
	return ep
}

// Close shuts down every endpoint.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	eps := make([]*fabricEndpoint, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.mu.Unlock()
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			return err
		}
	}
	return nil
}

// route samples loss per copy and hands the survivors to the destination
// queue as one entry: n logical copies cost one buffer copy and one
// channel operation, but link loss — the model the protocol's redundancy
// math is built on — stays an independent Bernoulli trial per copy.
// Queue overflow (local backpressure, not part of the paper's loss model)
// drops the surviving batch as a unit; that correlation is not new — a
// queue with no room for copy 1 of a burst had no room for copies 2..n
// sent microseconds later either.
func (f *Fabric) route(from, to topology.NodeID, frame []byte, n int) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("transport: fabric closed")
	}
	dst, ok := f.endpoints[to]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	f.stats.Sent += n
	m := f.models[dlink{from, to}]
	if m.Down || f.severed(from, to) {
		f.stats.FaultDrops += n
		f.mu.Unlock()
		return nil
	}
	survivors := n
	if m.Loss > 0 {
		survivors = 0
		for i := 0; i < n; i++ {
			if f.rng.Float64() >= m.Loss {
				survivors++
			}
		}
		f.stats.Lost += n - survivors
	}
	delay := f.delayFor(m)
	f.mu.Unlock()
	if survivors == 0 {
		return nil
	}

	// Copy: the sender may reuse its buffer after Send returns.
	cp := make([]byte, len(frame))
	copy(cp, frame)
	deliver := func() {
		select {
		case dst.queue <- inboundFrame{from: from, frame: cp, copies: survivors}:
		case <-dst.stop:
		default:
			f.mu.Lock()
			f.stats.Overflows += survivors
			f.mu.Unlock()
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
		return nil
	}
	deliver()
	return nil
}

// routeBatch is route over several distinct frames: one lock acquisition
// samples loss for the whole flush (still one independent Bernoulli
// trial per copy), then each surviving frame is copied and enqueued.
// Under a saturated sender the fabric's global mutex is the contended
// resource, so amortizing it across a coalesced flush is what the lane
// scheduler's throughput win on this transport comes from.
func (f *Fabric) routeBatch(from, to topology.NodeID, batch []FrameBatch) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("transport: fabric closed")
	}
	dst, ok := f.endpoints[to]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	m := f.models[dlink{from, to}]
	if m.Down || f.severed(from, to) {
		for _, e := range batch {
			if e.Copies > 0 {
				f.stats.Sent += e.Copies
				f.stats.FaultDrops += e.Copies
			}
		}
		f.mu.Unlock()
		return nil
	}
	survivors := make([]int, len(batch))
	for i, e := range batch {
		if e.Copies <= 0 {
			continue
		}
		f.stats.Sent += e.Copies
		survivors[i] = e.Copies
		if m.Loss > 0 {
			survivors[i] = 0
			for c := 0; c < e.Copies; c++ {
				if f.rng.Float64() >= m.Loss {
					survivors[i]++
				}
			}
			f.stats.Lost += e.Copies - survivors[i]
		}
	}
	delay := f.delayFor(m)
	f.mu.Unlock()

	inbound := make([]inboundFrame, 0, len(batch))
	for i, e := range batch {
		if survivors[i] == 0 {
			continue
		}
		// Copy per frame: the sender may recycle its buffers on return.
		cp := make([]byte, len(e.Frame))
		copy(cp, e.Frame)
		inbound = append(inbound, inboundFrame{from: from, frame: cp, copies: survivors[i]})
	}
	if len(inbound) == 0 {
		return nil
	}
	// One delayed delivery for the whole flush: the frames shared a wire,
	// so they share an arrival (and one timer — per-frame timers would
	// melt the runtime under a saturating sender).
	deliver := func() {
		for _, in := range inbound {
			select {
			case dst.queue <- in:
			case <-dst.stop:
			default:
				f.mu.Lock()
				f.stats.Overflows += in.copies
				f.mu.Unlock()
			}
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
		return nil
	}
	deliver()
	return nil
}

// inboundFrame is one queue entry: `copies` logical arrivals of the same
// frame (the handler runs once per copy).
type inboundFrame struct {
	from   topology.NodeID
	frame  []byte
	copies int
}

// linkBuf is one outbound connection's simulated write buffer: the
// per-link lock serializes flushes on the same link while flushes to
// different peers proceed in parallel, like per-connection socket
// buffers.
type linkBuf struct {
	mu      sync.Mutex
	scratch []byte
}

// fabricEndpoint is one node's attachment to the fabric.
type fabricEndpoint struct {
	fabric *Fabric
	id     topology.NodeID

	handlerMu sync.RWMutex
	handler   Handler

	// links holds per-destination write buffers; nil unless SendCost > 0.
	linksMu sync.Mutex
	links   map[topology.NodeID]*linkBuf

	//adaptivelint:chan owner=Fabric.route,Fabric.routeBatch close=never
	queue chan inboundFrame
	//adaptivelint:chan owner=none close=fabricEndpoint.Close
	stop chan struct{}
	//adaptivelint:chan owner=none close=fabricEndpoint.receiveLoop
	done      chan struct{}
	closeOnce sync.Once
}

var _ Transport = (*fabricEndpoint)(nil)
var _ FrameOwner = (*fabricEndpoint)(nil)
var _ BatchSender = (*fabricEndpoint)(nil)
var _ MultiFrameSender = (*fabricEndpoint)(nil)

// HandlerOwnsFrame implements FrameOwner: route() allocates a fresh
// buffer per routed frame and the fabric never touches it again, so
// receivers may decode it zero-copy.
func (ep *fabricEndpoint) HandlerOwnsFrame() bool { return true }

// Local implements Transport.
func (ep *fabricEndpoint) Local() topology.NodeID { return ep.id }

// paySendCost performs the simulated per-flush kernel copy for the link
// to `to`. One call per transport call, regardless of how many frames
// or copies the flush carries — that amortization is exactly what a
// coalescing sender buys.
func (ep *fabricEndpoint) paySendCost(to topology.NodeID) {
	cost := ep.fabric.opts.SendCost
	if cost <= 0 {
		return
	}
	ep.linksMu.Lock()
	lb := ep.links[to]
	if lb == nil {
		lb = &linkBuf{scratch: make([]byte, cost)}
		ep.links[to] = lb
	}
	ep.linksMu.Unlock()
	lb.mu.Lock()
	copy(lb.scratch, ep.fabric.costSrc)
	lb.mu.Unlock()
}

// SetHandler implements Transport.
func (ep *fabricEndpoint) SetHandler(h Handler) {
	ep.handlerMu.Lock()
	defer ep.handlerMu.Unlock()
	ep.handler = h
}

// Send implements Transport.
func (ep *fabricEndpoint) Send(to topology.NodeID, frame []byte) error {
	return ep.SendN(to, frame, 1)
}

// SendN implements BatchSender: n logical copies from one enqueue, with
// loss still sampled per copy.
func (ep *fabricEndpoint) SendN(to topology.NodeID, frame []byte, n int) error {
	if n <= 0 {
		return nil
	}
	select {
	case <-ep.stop:
		return errors.New("transport: endpoint closed")
	default:
	}
	ep.paySendCost(to)
	return ep.fabric.route(ep.id, to, frame, n)
}

// SendFrames implements MultiFrameSender: the whole flush samples loss
// under one fabric lock acquisition instead of one per frame.
func (ep *fabricEndpoint) SendFrames(to topology.NodeID, batch []FrameBatch) error {
	if len(batch) == 0 {
		return nil
	}
	select {
	case <-ep.stop:
		return errors.New("transport: endpoint closed")
	default:
	}
	ep.paySendCost(to)
	return ep.fabric.routeBatch(ep.id, to, batch)
}

// Close implements Transport.
func (ep *fabricEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.stop)
		<-ep.done
	})
	return nil
}

// receiveLoop serializes handler invocations for this endpoint.
func (ep *fabricEndpoint) receiveLoop() {
	defer close(ep.done)
	for {
		select {
		case in := <-ep.queue:
			ep.handlerMu.RLock()
			h := ep.handler
			ep.handlerMu.RUnlock()
			if h != nil {
				for i := 0; i < in.copies; i++ {
					h(in.from, in.frame)
				}
			}
		case <-ep.stop:
			return
		}
	}
}
