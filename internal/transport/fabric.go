package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptivecast/internal/topology"
)

// FabricOptions tunes the in-process transport.
type FabricOptions struct {
	// Seed drives the loss sampling; 0 uses 1 (keep runs reproducible).
	Seed int64
	// Latency delays every delivery (0 = immediate).
	Latency time.Duration
	// QueueSize is each endpoint's inbound buffer (default 1024). When a
	// queue is full the frame is dropped — the model tolerates loss by
	// construction, and the drop is counted in Stats.
	QueueSize int
}

func (o FabricOptions) withDefaults() FabricOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.QueueSize == 0 {
		o.QueueSize = 1024
	}
	return o
}

// FabricStats counts fabric-level events.
type FabricStats struct {
	Sent      int
	Lost      int // dropped by injected loss
	Overflows int // dropped because a receive queue was full
}

// Fabric is an in-process "network": it owns one endpoint per node and
// applies injectable per-link loss probabilities, giving the live node
// stack the same probabilistic environment the simulator models.
type Fabric struct {
	mu        sync.Mutex
	opts      FabricOptions
	rng       *rand.Rand
	endpoints map[topology.NodeID]*fabricEndpoint
	loss      map[topology.Link]float64
	stats     FabricStats
	closed    bool
}

// NewFabric returns an empty fabric.
func NewFabric(opts FabricOptions) *Fabric {
	opts = opts.withDefaults()
	return &Fabric{
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		endpoints: make(map[topology.NodeID]*fabricEndpoint),
		loss:      make(map[topology.Link]float64),
	}
}

// SetLoss injects a loss probability for the (undirected) link a—b.
func (f *Fabric) SetLoss(a, b topology.NodeID, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("transport: loss %v outside [0,1]", p)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss[topology.NewLink(a, b)] = p
	return nil
}

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() FabricStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Endpoint returns (creating on first use) the transport endpoint for id.
func (f *Fabric) Endpoint(id topology.NodeID) Transport {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep, ok := f.endpoints[id]; ok {
		return ep
	}
	ep := &fabricEndpoint{
		fabric: f,
		id:     id,
		queue:  make(chan inboundFrame, f.opts.QueueSize),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go ep.receiveLoop()
	f.endpoints[id] = ep
	return ep
}

// Close shuts down every endpoint.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	eps := make([]*fabricEndpoint, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.mu.Unlock()
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			return err
		}
	}
	return nil
}

// route samples loss per copy and hands the survivors to the destination
// queue as one entry: n logical copies cost one buffer copy and one
// channel operation, but link loss — the model the protocol's redundancy
// math is built on — stays an independent Bernoulli trial per copy.
// Queue overflow (local backpressure, not part of the paper's loss model)
// drops the surviving batch as a unit; that correlation is not new — a
// queue with no room for copy 1 of a burst had no room for copies 2..n
// sent microseconds later either.
func (f *Fabric) route(from, to topology.NodeID, frame []byte, n int) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("transport: fabric closed")
	}
	dst, ok := f.endpoints[to]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	f.stats.Sent += n
	survivors := n
	if p := f.loss[topology.NewLink(from, to)]; p > 0 {
		survivors = 0
		for i := 0; i < n; i++ {
			if f.rng.Float64() >= p {
				survivors++
			}
		}
		f.stats.Lost += n - survivors
	}
	f.mu.Unlock()
	if survivors == 0 {
		return nil
	}

	// Copy: the sender may reuse its buffer after Send returns.
	cp := make([]byte, len(frame))
	copy(cp, frame)
	deliver := func() {
		select {
		case dst.queue <- inboundFrame{from: from, frame: cp, copies: survivors}:
		case <-dst.stop:
		default:
			f.mu.Lock()
			f.stats.Overflows += survivors
			f.mu.Unlock()
		}
	}
	if f.opts.Latency > 0 {
		time.AfterFunc(f.opts.Latency, deliver)
		return nil
	}
	deliver()
	return nil
}

// inboundFrame is one queue entry: `copies` logical arrivals of the same
// frame (the handler runs once per copy).
type inboundFrame struct {
	from   topology.NodeID
	frame  []byte
	copies int
}

// fabricEndpoint is one node's attachment to the fabric.
type fabricEndpoint struct {
	fabric *Fabric
	id     topology.NodeID

	handlerMu sync.RWMutex
	handler   Handler

	queue     chan inboundFrame
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

var _ Transport = (*fabricEndpoint)(nil)
var _ FrameOwner = (*fabricEndpoint)(nil)

// HandlerOwnsFrame implements FrameOwner: route() allocates a fresh
// buffer per routed frame and the fabric never touches it again, so
// receivers may decode it zero-copy.
func (ep *fabricEndpoint) HandlerOwnsFrame() bool { return true }

// Local implements Transport.
func (ep *fabricEndpoint) Local() topology.NodeID { return ep.id }

// SetHandler implements Transport.
func (ep *fabricEndpoint) SetHandler(h Handler) {
	ep.handlerMu.Lock()
	defer ep.handlerMu.Unlock()
	ep.handler = h
}

// Send implements Transport.
func (ep *fabricEndpoint) Send(to topology.NodeID, frame []byte) error {
	return ep.SendN(to, frame, 1)
}

// SendN implements BatchSender: n logical copies from one enqueue, with
// loss still sampled per copy.
func (ep *fabricEndpoint) SendN(to topology.NodeID, frame []byte, n int) error {
	if n <= 0 {
		return nil
	}
	select {
	case <-ep.stop:
		return errors.New("transport: endpoint closed")
	default:
	}
	return ep.fabric.route(ep.id, to, frame, n)
}

// Close implements Transport.
func (ep *fabricEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.stop)
		<-ep.done
	})
	return nil
}

// receiveLoop serializes handler invocations for this endpoint.
func (ep *fabricEndpoint) receiveLoop() {
	defer close(ep.done)
	for {
		select {
		case in := <-ep.queue:
			ep.handlerMu.RLock()
			h := ep.handler
			ep.handlerMu.RUnlock()
			if h != nil {
				for i := 0; i < in.copies; i++ {
					h(in.from, in.frame)
				}
			}
		case <-ep.stop:
			return
		}
	}
}
