package transport

import (
	"testing"
	"time"

	"adaptivecast/internal/topology"
)

func TestFabricAsymmetricLoss(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	colA, colB := newCollector(), newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)

	// 0→1 is dead, 1→0 is perfect: the directions are independent.
	if err := f.SetLinkModel(0, 1, LinkModel{Loss: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := a.Send(1, []byte("fwd")); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(0, []byte("rev")); err != nil {
			t.Fatal(err)
		}
	}
	colA.wait(t, 20)
	frames, _ := colB.snapshot()
	if len(frames) != 0 {
		t.Fatalf("0→1 at loss 1.0 delivered %d frames", len(frames))
	}
	st := f.Stats()
	if st.Lost != 20 {
		t.Fatalf("Lost = %d, want 20", st.Lost)
	}
}

func TestFabricSetLossSharesModelPath(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	// SetLinkModel first, then legacy SetLoss: loss updates both
	// directions but must not clobber the latency already configured.
	if err := f.SetLinkModel(0, 1, LinkModel{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetLoss(0, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	fwd := f.LinkModelFor(0, 1)
	rev := f.LinkModelFor(1, 0)
	if fwd.Loss != 0.25 || rev.Loss != 0.25 {
		t.Fatalf("SetLoss not applied to both directions: fwd=%v rev=%v", fwd.Loss, rev.Loss)
	}
	if fwd.Latency != time.Millisecond {
		t.Fatalf("SetLoss clobbered the directional latency: %v", fwd.Latency)
	}
	if err := f.SetLoss(0, 1, 1.5); err == nil {
		t.Fatal("SetLoss accepted out-of-range probability")
	}
	if err := f.SetLinkModel(0, 1, LinkModel{Loss: -0.1}); err == nil {
		t.Fatal("SetLinkModel accepted negative loss")
	}
}

func TestFabricPartitionAndHeal(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	eps := make([]Transport, 4)
	cols := make([]*collector, 4)
	for i := range eps {
		eps[i] = f.Endpoint(topology.NodeID(i))
		cols[i] = newCollector()
		eps[i].SetHandler(cols[i].handler)
	}

	f.SetPartition([]topology.NodeID{0, 1}, []topology.NodeID{2, 3})
	if err := eps[0].Send(2, []byte("cross")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("same")); err != nil {
		t.Fatal(err)
	}
	cols[1].wait(t, 1)
	if got, _ := cols[2].snapshot(); len(got) != 0 {
		t.Fatalf("partition leaked %d cross-group frames", len(got))
	}
	if st := f.Stats(); st.FaultDrops != 1 {
		t.Fatalf("FaultDrops = %d, want 1", st.FaultDrops)
	}

	// A listed node is also severed from unlisted ones.
	f.SetPartition([]topology.NodeID{3})
	if err := eps[0].Send(3, []byte("to-isolated")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("unlisted-pair")); err != nil {
		t.Fatal(err)
	}
	cols[1].wait(t, 1)
	if got, _ := cols[3].snapshot(); len(got) != 0 {
		t.Fatalf("isolated node received %d frames", len(got))
	}

	// Heal: everything flows again.
	f.SetPartition()
	if err := eps[0].Send(2, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	cols[2].wait(t, 1)
}

func TestFabricLinkFlap(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	f.SetLinkDown(0, 1, true)
	if err := a.Send(1, []byte("down")); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.FaultDrops != 1 {
		t.Fatalf("FaultDrops = %d, want 1", st.FaultDrops)
	}
	f.SetLinkDown(0, 1, false)
	if err := a.Send(1, []byte("up")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	frames, _ := col.snapshot()
	if len(frames) != 1 || frames[0] != "up" {
		t.Fatalf("after flap up, got frames %v", frames)
	}
	// The down flag survives round trips through SetLoss.
	f.SetLinkDown(0, 1, true)
	if err := f.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if m := f.LinkModelFor(0, 1); !m.Down || m.Loss != 0.5 {
		t.Fatalf("SetLoss clobbered Down: %+v", m)
	}
}

func TestFabricDirectionalLatencyAndJitter(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	err := f.SetLinkModel(0, 1, LinkModel{Latency: 2 * time.Millisecond, Jitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send(1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("delivery beat the modeled latency: %v", elapsed)
	}
	// Batched sends ride the same delayed path.
	bs := a.(MultiFrameSender)
	if err := bs.SendFrames(1, []FrameBatch{{Frame: []byte("x"), Copies: 1}, {Frame: []byte("y"), Copies: 2}}); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 3)
}
