package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecast/internal/topology"
)

const (
	// tcpMagic guards against cross-protocol connections.
	tcpMagic = 0xADCA57
	// maxFrameSize bounds a single frame (heartbeats carry full knowledge
	// snapshots, which grow with the system; 64 MiB is far above any
	// realistic view).
	maxFrameSize = 64 << 20
)

// TCPOptions tunes the TCP transport.
type TCPOptions struct {
	// DialTimeout bounds outbound connection establishment (default 5s).
	DialTimeout time.Duration
	// QueueSize is the inbound dispatch buffer (default 1024).
	QueueSize int
	// Dial, when non-nil, replaces net.DialTimeout for outbound
	// connections. Fault-injection tests use it to wrap the returned
	// net.Conn (e.g. a lossy conn that discards whole writes); production
	// code leaves it nil.
	Dial func(network, address string, timeout time.Duration) (net.Conn, error)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.QueueSize == 0 {
		o.QueueSize = 1024
	}
	return o
}

// TCP is a Transport over real sockets: length-prefixed frames preceded by
// a one-time hello identifying the sender. Connections are dialed on
// demand and cached; inbound frames from all connections are serialized
// through one dispatch goroutine so the node sees ordered input.
//
// TCP implements BatchSender: SendN assembles the n length-prefixed
// copies into one buffer and flushes them with a single Write — one
// syscall for a whole per-edge retransmission burst instead of 2n.
type TCP struct {
	local    topology.NodeID
	opts     TCPOptions
	listener net.Listener

	handlerMu sync.RWMutex
	handler   Handler

	mu      sync.Mutex
	peers   map[topology.NodeID]string   // static address book
	conns   map[topology.NodeID]*tcpConn // outbound connection cache
	inConns map[net.Conn]struct{}        // accepted connections (closed on shutdown)
	closed  bool

	flushes    atomic.Int64
	framesSent atomic.Int64
	bytesSent  atomic.Int64

	//adaptivelint:chan owner=TCP.readLoop close=never
	inbound chan inboundFrame
	//adaptivelint:chan owner=none close=TCP.Close
	stop chan struct{}
	//adaptivelint:chan owner=none close=TCP.dispatchLoop
	done chan struct{}
	wg   sync.WaitGroup
}

// TCPStats counts outbound transport work. Flushes is the number of
// socket Write calls (≈ syscalls): the batching contract is that SendN
// costs one flush however many copies it carries, which the transport
// tests assert through this hook.
type TCPStats struct {
	Flushes    int // socket writes issued
	FramesSent int // logical frames handed to the socket
	BytesSent  int // bytes handed to the socket (headers included)
}

// Stats returns a snapshot of the outbound counters.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		Flushes:    int(t.flushes.Load()),
		FramesSent: int(t.framesSent.Load()),
		BytesSent:  int(t.bytesSent.Load()),
	}
}

// tcpConn wraps an outbound connection with a write lock.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

var _ Transport = (*TCP)(nil)
var _ BatchSender = (*TCP)(nil)
var _ MultiFrameSender = (*TCP)(nil)

// NewTCP starts a TCP transport for node `local`, listening on listenAddr
// and able to reach the peers in the address book (peer ID → host:port).
func NewTCP(local topology.NodeID, listenAddr string, peers map[topology.NodeID]string, opts TCPOptions) (*TCP, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		local:    local,
		opts:     opts,
		listener: ln,
		peers:    make(map[topology.NodeID]string, len(peers)),
		conns:    make(map[topology.NodeID]*tcpConn),
		inConns:  make(map[net.Conn]struct{}),
		inbound:  make(chan inboundFrame, opts.QueueSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for id, addr := range peers {
		t.peers[id] = addr
	}
	t.wg.Add(1)
	//adaptivelint:goroutine stop=t.closed
	go t.acceptLoop()
	//adaptivelint:goroutine stop=t.stop
	go t.dispatchLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() net.Addr { return t.listener.Addr() }

// AddPeer extends the address book at runtime.
func (t *TCP) AddPeer(id topology.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Local implements Transport.
func (t *TCP) Local() topology.NodeID { return t.local }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.handler = h
}

// Send implements Transport.
func (t *TCP) Send(to topology.NodeID, frame []byte) error {
	return t.SendN(to, frame, 1)
}

// SendN implements BatchSender: the n length-prefixed copies are laid out
// in one buffer and flushed with a single Write, so a per-edge burst of
// m[j] identical copies costs one syscall. A single Send is the n=1 case
// of the same path (header and frame coalesced — already halving the
// writes of the naive header-then-body sequence).
func (t *TCP) SendN(to topology.NodeID, frame []byte, n int) error {
	if n <= 0 {
		return nil
	}
	if len(frame) > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	conn, err := t.connTo(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, n*(4+len(frame)))
	for i := 0; i < n; i++ {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(frame)))
		buf = append(buf, frame...)
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if _, err := conn.c.Write(buf); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("transport: write to %d: %w", to, err)
	}
	t.flushes.Add(1)
	t.framesSent.Add(int64(n))
	t.bytesSent.Add(int64(len(buf)))
	return nil
}

// SendFrames implements MultiFrameSender: the batch's distinct frames —
// each repeated Copies times — are laid out length-prefixed in one
// buffer and flushed with a single Write, so a lane-scheduler flush
// coalescing several broadcasts to one peer costs one syscall however
// many frames it carries.
func (t *TCP) SendFrames(to topology.NodeID, batch []FrameBatch) error {
	size := 0
	for _, e := range batch {
		if e.Copies <= 0 {
			continue
		}
		if len(e.Frame) > maxFrameSize {
			return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(e.Frame))
		}
		size += e.Copies * (4 + len(e.Frame))
	}
	if size == 0 {
		return nil
	}
	conn, err := t.connTo(to)
	if err != nil {
		return err
	}
	frames := 0
	buf := make([]byte, 0, size)
	for _, e := range batch {
		for i := 0; i < e.Copies; i++ {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Frame)))
			buf = append(buf, e.Frame...)
			frames++
		}
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if _, err := conn.c.Write(buf); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("transport: write to %d: %w", to, err)
	}
	t.flushes.Add(1)
	t.framesSent.Add(int64(frames))
	t.bytesSent.Add(int64(len(buf)))
	return nil
}

// connTo returns a cached connection or dials one, sending the hello.
func (t *TCP) connTo(to topology.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("transport: closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", to)
	}

	dial := t.opts.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	raw, err := dial("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d (%s): %w", to, addr, err)
	}
	hello := make([]byte, 12)
	binary.BigEndian.PutUint32(hello[0:4], tcpMagic)
	binary.BigEndian.PutUint64(hello[4:12], uint64(int64(t.local)))
	if _, err := raw.Write(hello); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("transport: hello to %d: %w", to, err)
	}

	conn := &tcpConn{c: raw}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = raw.Close()
		return nil, errors.New("transport: closed")
	}
	if existing, ok := t.conns[to]; ok {
		_ = raw.Close() // lost the race; use the winner
		return existing, nil
	}
	t.conns[to] = conn
	return conn, nil
}

// dropConn evicts a broken cached connection.
func (t *TCP) dropConn(to topology.NodeID, conn *tcpConn) {
	_ = conn.c.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inConns))
	for _, c := range t.conns {
		conns = append(conns, c.c)
	}
	for c := range t.inConns {
		conns = append(conns, c)
	}
	t.conns = make(map[topology.NodeID]*tcpConn)
	t.inConns = make(map[net.Conn]struct{})
	t.mu.Unlock()

	close(t.stop)
	_ = t.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	<-t.done
	return nil
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inConns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		//adaptivelint:goroutine stop=t.stop
		go t.readLoop(conn)
	}
}

// readLoop validates the hello and streams frames into the dispatcher.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inConns, conn)
		t.mu.Unlock()
	}()

	hello := make([]byte, 12)
	if _, err := io.ReadFull(conn, hello); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hello[0:4]) != tcpMagic {
		return
	}
	from := topology.NodeID(int64(binary.BigEndian.Uint64(hello[4:12])))

	header := make([]byte, 4)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header)
		if size > maxFrameSize {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		select {
		case t.inbound <- inboundFrame{from: from, frame: frame, copies: 1}:
		case <-t.stop:
			return
		}
	}
}

// dispatchLoop serializes handler invocations.
func (t *TCP) dispatchLoop() {
	defer close(t.done)
	for {
		select {
		case in := <-t.inbound:
			t.handlerMu.RLock()
			h := t.handler
			t.handlerMu.RUnlock()
			if h != nil {
				for i := 0; i < in.copies; i++ {
					h(in.from, in.frame)
				}
			}
		case <-t.stop:
			return
		}
	}
}
