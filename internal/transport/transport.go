// Package transport abstracts frame delivery between live nodes. Two
// implementations ship with the library:
//
//   - Fabric / endpoint: an in-process transport with injectable per-link
//     loss and latency, used by the examples and integration tests to run
//     whole clusters of goroutine nodes in one process;
//   - TCP: a length-prefixed frame protocol over the standard library's
//     net package, for running nodes across real machines.
//
// Transports deliver opaque byte frames; the wire package handles
// encoding. Handlers are invoked on the transport's receive goroutine, one
// frame at a time per node, so node state machines see serialized input.
//
// The package opts into adaptivelint's goroutine-lifecycle rule: every
// go statement declares the stop signal its body observes (goroleak),
// and every channel field declares its sender and closer (chanowner).
//
//adaptivelint:goroutines checked
package transport

import "adaptivecast/internal/topology"

// Handler consumes one inbound frame. Implementations must not retain the
// frame slice after returning.
type Handler func(from topology.NodeID, frame []byte)

// Transport sends frames to peers and feeds inbound frames to a handler.
type Transport interface {
	// Local returns the node ID this endpoint speaks for.
	Local() topology.NodeID
	// SetHandler installs the inbound frame consumer. It must be called
	// before the first Send and at most once.
	SetHandler(h Handler)
	// Send transmits a frame. Sends are best-effort: probabilistic
	// transports may drop frames silently — that is the failure model the
	// protocol is built for — but structural failures (unknown peer,
	// closed transport) return an error.
	//
	// Buffer ownership: the frame slice is only borrowed for the duration
	// of the call — when Send returns, the buffer is the caller's again
	// and may be recycled immediately. Implementations that need the
	// bytes later (queued delivery, async writes) must copy before
	// returning; both in-package transports do (the Fabric copies per
	// routed frame, TCP lays frames into a fresh write buffer). This is
	// the outbound mirror of the FrameOwner contract, and it is what
	// makes pooled encode buffers on the send path sound.
	Send(to topology.NodeID, frame []byte) error
	// Close releases resources and stops the receive loop. It is
	// idempotent; after Close, Send fails and no handler runs.
	Close() error
}

// BatchSender is the optional fast path for transports that can deliver n
// logical copies of one frame more cheaply than n Send calls — the
// adaptive protocol's allocator assigns m[j] identical copies per tree
// edge, so the datapath sends the same bytes to the same peer in bursts.
//
// Contract: SendN(to, frame, n) is semantically n independent Send calls —
// the receiver's handler runs once per surviving copy, and probabilistic
// transports sample loss per copy, not per batch (the protocol's
// reliability math assumes independent copy losses). n <= 0 is a no-op.
// Like Send, a nil error means the batch was handed to the transport, not
// that any copy arrived.
//
// Implementations in this package: the Fabric delivers n logical copies
// from a single queue enqueue (one buffer copy, one channel operation),
// and TCP coalesces the n length-prefixed frames into one buffered flush
// (one syscall instead of 2n writes).
type BatchSender interface {
	SendN(to topology.NodeID, frame []byte, n int) error
}

// FrameOwner is the optional marker for transports whose inbound frame
// buffers are exclusively owned by the receiving side: the transport
// never reuses or mutates a buffer after handing it to the handler, so
// the handler may retain it — and decode it zero-copy (wire.DecodeBorrow)
// instead of copying body bytes out. The in-process Fabric qualifies (it
// allocates a fresh buffer per routed frame); TCP does not (it reads
// into a recycled buffer) and keeps the copying decode.
type FrameOwner interface {
	// HandlerOwnsFrame reports whether handler-received frame buffers are
	// the handler's to keep.
	HandlerOwnsFrame() bool
}

// FrameBatch is one entry of a coalesced flush: an encoded frame and the
// number of logical copies to deliver (the per-edge m[j] burst).
type FrameBatch struct {
	Frame  []byte
	Copies int
}

// MultiFrameSender is the optional fast path for transports that can
// flush several *distinct* frames to one peer more cheaply than one call
// per frame — the lane scheduler's aggregation window coalesces different
// broadcasts headed to the same peer into one flush, and a transport
// implementing this turns the whole flush into one operation (TCP: one
// buffered Write; the Fabric: one lock acquisition with loss still
// sampled per copy).
//
// Contract: SendFrames(to, batch) is semantically the concatenation of
// SendN(to, e.Frame, e.Copies) over the batch, in order — per-copy loss
// sampling and per-copy handler invocation included. Entries with
// Copies <= 0 are skipped. Frame buffers follow Send's ownership rule:
// borrowed for the call, the caller's again on return.
type MultiFrameSender interface {
	SendFrames(to topology.NodeID, batch []FrameBatch) error
}

// SendFrames flushes a batch of distinct frames to one peer, using the
// transport's MultiFrameSender fast path when it has one and degrading
// to a SendN loop otherwise. It reports how many logical copies were
// handed to the transport; like SendN, the fast path is all-or-nothing
// while the fallback loop counts per-entry successes. err is the last
// failure when any entry failed, nil otherwise.
func SendFrames(t Transport, to topology.NodeID, batch []FrameBatch) (sent int, err error) {
	total := 0
	for _, e := range batch {
		if e.Copies > 0 {
			total += e.Copies
		}
	}
	if total == 0 {
		return 0, nil
	}
	if ms, ok := t.(MultiFrameSender); ok {
		if err := ms.SendFrames(to, batch); err != nil {
			return 0, err
		}
		return total, nil
	}
	var lastErr error
	for _, e := range batch {
		got, err := SendN(t, to, e.Frame, e.Copies)
		sent += got
		if err != nil {
			lastErr = err
		}
	}
	return sent, lastErr
}

// SendN transmits n logical copies of frame to one peer, using the
// transport's BatchSender fast path when it has one and degrading to a
// best-effort loop of Send calls otherwise. It reports how many copies
// were handed to the transport: a batching transport is all-or-nothing
// (n or 0), while the fallback loop attempts every copy and counts the
// successes, so callers keep exact accounting across partial failures.
// err is the last failure when any copy failed (sent < n), nil otherwise.
// Callers on the broadcast datapath should always go through this helper
// rather than looping themselves, so any transport that learns to batch
// speeds them up transparently.
func SendN(t Transport, to topology.NodeID, frame []byte, n int) (sent int, err error) {
	if n <= 0 {
		return 0, nil
	}
	if bs, ok := t.(BatchSender); ok {
		if err := bs.SendN(to, frame, n); err != nil {
			return 0, err
		}
		return n, nil
	}
	var lastErr error
	for i := 0; i < n; i++ {
		if err := t.Send(to, frame); err == nil {
			sent++
		} else {
			lastErr = err
		}
	}
	return sent, lastErr
}
