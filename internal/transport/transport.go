// Package transport abstracts frame delivery between live nodes. Two
// implementations ship with the library:
//
//   - Fabric / endpoint: an in-process transport with injectable per-link
//     loss and latency, used by the examples and integration tests to run
//     whole clusters of goroutine nodes in one process;
//   - TCP: a length-prefixed frame protocol over the standard library's
//     net package, for running nodes across real machines.
//
// Transports deliver opaque byte frames; the wire package handles
// encoding. Handlers are invoked on the transport's receive goroutine, one
// frame at a time per node, so node state machines see serialized input.
package transport

import "adaptivecast/internal/topology"

// Handler consumes one inbound frame. Implementations must not retain the
// frame slice after returning.
type Handler func(from topology.NodeID, frame []byte)

// Transport sends frames to peers and feeds inbound frames to a handler.
type Transport interface {
	// Local returns the node ID this endpoint speaks for.
	Local() topology.NodeID
	// SetHandler installs the inbound frame consumer. It must be called
	// before the first Send and at most once.
	SetHandler(h Handler)
	// Send transmits a frame. Sends are best-effort: probabilistic
	// transports may drop frames silently — that is the failure model the
	// protocol is built for — but structural failures (unknown peer,
	// closed transport) return an error.
	Send(to topology.NodeID, frame []byte) error
	// Close releases resources and stops the receive loop. It is
	// idempotent; after Close, Send fails and no handler runs.
	Close() error
}
