package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivecast/internal/topology"
)

// collector gathers frames thread-safely.
type collector struct {
	mu     sync.Mutex
	frames []string
	froms  []topology.NodeID
	notify chan struct{}
}

func newCollector() *collector {
	return &collector{notify: make(chan struct{}, 1024)}
}

func (c *collector) handler(from topology.NodeID, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, string(frame))
	c.froms = append(c.froms, from)
	c.mu.Unlock()
	c.notify <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames (got %d)", n, i)
		}
	}
}

func (c *collector) snapshot() ([]string, []topology.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.frames...), append([]topology.NodeID(nil), c.froms...)
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if a.Local() != 0 || b.Local() != 1 {
		t.Fatal("Local() wrong")
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, 5)
	frames, froms := col.snapshot()
	for i, fr := range frames {
		if fr != fmt.Sprintf("m%d", i) {
			t.Errorf("frame %d = %q (ordering broken?)", i, fr)
		}
		if froms[i] != 0 {
			t.Errorf("from = %d, want 0", froms[i])
		}
	}
	if s := f.Stats(); s.Sent != 5 || s.Lost != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFabricSenderBufferReuse(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	buf := []byte("first")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // sender reuses its buffer immediately
	col.wait(t, 1)
	frames, _ := col.snapshot()
	if frames[0] != "first" {
		t.Errorf("frame corrupted by sender buffer reuse: %q", frames[0])
	}
}

func TestFabricUnknownPeer(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	if err := a.Send(9, []byte("x")); err == nil {
		t.Error("send to unknown peer should fail")
	}
}

func TestFabricLossInjection(t *testing.T) {
	f := NewFabric(FabricOptions{Seed: 42})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := f.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := f.SetLoss(0, 1, 1.5); err == nil {
		t.Error("invalid loss should fail")
	}
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Sent != total {
		t.Fatalf("sent = %d", s.Sent)
	}
	frac := float64(s.Lost) / total
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("loss fraction = %v, want ≈0.5", frac)
	}
	col.wait(t, total-s.Lost)
}

func TestFabricCloseStopsTraffic(t *testing.T) {
	f := NewFabric(FabricOptions{})
	a := f.Endpoint(0)
	f.Endpoint(1)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); err == nil {
		t.Error("send after close should fail")
	}
	// Idempotent.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric(FabricOptions{Latency: 30 * time.Millisecond})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)
	start := time.Now()
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	serverCol := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(serverCol.handler)

	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{
		1: server.Addr().String(),
	}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	for i := 0; i < 10; i++ {
		if err := client.Send(1, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	serverCol.wait(t, 10)
	frames, froms := serverCol.snapshot()
	for i, fr := range frames {
		if fr != fmt.Sprintf("frame-%d", i) {
			t.Errorf("frame %d = %q", i, fr)
		}
		if froms[i] != 0 {
			t.Errorf("from = %d, want 0", froms[i])
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	aCol, bCol := newCollector(), newCollector()
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetHandler(aCol.handler)

	b, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetHandler(bCol.handler)

	a.AddPeer(1, b.Addr().String())
	b.AddPeer(0, a.Addr().String())

	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	bCol.wait(t, 1)
	if err := b.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	aCol.wait(t, 1)
	aFrames, _ := aCol.snapshot()
	bFrames, _ := bCol.snapshot()
	if bFrames[0] != "ping" || aFrames[0] != "pong" {
		t.Errorf("got %q / %q", bFrames[0], aFrames[0])
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Send(7, []byte("x")); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, "127.0.0.1:0", map[topology.NodeID]string{0: a.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, []byte("x")); err == nil {
		t.Error("send after close should fail")
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	_ = a.Close()
}

func TestTCPLargeFrame(t *testing.T) {
	col := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(col.handler)
	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{1: server.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	big := make([]byte, 1<<20) // 1 MiB, heartbeat-snapshot scale
	for i := range big {
		big[i] = byte(i)
	}
	if err := client.Send(1, big); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	frames, _ := col.snapshot()
	if len(frames[0]) != len(big) {
		t.Fatalf("size = %d, want %d", len(frames[0]), len(big))
	}
	if frames[0] != string(big) {
		t.Error("large frame corrupted")
	}
}
