package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivecast/internal/topology"
)

// collector gathers frames thread-safely.
type collector struct {
	mu     sync.Mutex
	frames []string
	froms  []topology.NodeID
	notify chan struct{}
}

func newCollector() *collector {
	return &collector{notify: make(chan struct{}, 1024)}
}

func (c *collector) handler(from topology.NodeID, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, string(frame))
	c.froms = append(c.froms, from)
	c.mu.Unlock()
	c.notify <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames (got %d)", n, i)
		}
	}
}

func (c *collector) snapshot() ([]string, []topology.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.frames...), append([]topology.NodeID(nil), c.froms...)
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if a.Local() != 0 || b.Local() != 1 {
		t.Fatal("Local() wrong")
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, 5)
	frames, froms := col.snapshot()
	for i, fr := range frames {
		if fr != fmt.Sprintf("m%d", i) {
			t.Errorf("frame %d = %q (ordering broken?)", i, fr)
		}
		if froms[i] != 0 {
			t.Errorf("from = %d, want 0", froms[i])
		}
	}
	if s := f.Stats(); s.Sent != 5 || s.Lost != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFabricSenderBufferReuse(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	buf := []byte("first")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // sender reuses its buffer immediately
	col.wait(t, 1)
	frames, _ := col.snapshot()
	if frames[0] != "first" {
		t.Errorf("frame corrupted by sender buffer reuse: %q", frames[0])
	}
}

func TestFabricUnknownPeer(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	if err := a.Send(9, []byte("x")); err == nil {
		t.Error("send to unknown peer should fail")
	}
}

func TestFabricLossInjection(t *testing.T) {
	f := NewFabric(FabricOptions{Seed: 42})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := f.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := f.SetLoss(0, 1, 1.5); err == nil {
		t.Error("invalid loss should fail")
	}
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Sent != total {
		t.Fatalf("sent = %d", s.Sent)
	}
	frac := float64(s.Lost) / total
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("loss fraction = %v, want ≈0.5", frac)
	}
	col.wait(t, total-s.Lost)
}

func TestFabricCloseStopsTraffic(t *testing.T) {
	f := NewFabric(FabricOptions{})
	a := f.Endpoint(0)
	f.Endpoint(1)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); err == nil {
		t.Error("send after close should fail")
	}
	// Idempotent.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric(FabricOptions{Latency: 30 * time.Millisecond})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)
	start := time.Now()
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	serverCol := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(serverCol.handler)

	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{
		1: server.Addr().String(),
	}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	for i := 0; i < 10; i++ {
		if err := client.Send(1, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	serverCol.wait(t, 10)
	frames, froms := serverCol.snapshot()
	for i, fr := range frames {
		if fr != fmt.Sprintf("frame-%d", i) {
			t.Errorf("frame %d = %q", i, fr)
		}
		if froms[i] != 0 {
			t.Errorf("from = %d, want 0", froms[i])
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	aCol, bCol := newCollector(), newCollector()
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetHandler(aCol.handler)

	b, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetHandler(bCol.handler)

	a.AddPeer(1, b.Addr().String())
	b.AddPeer(0, a.Addr().String())

	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	bCol.wait(t, 1)
	if err := b.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	aCol.wait(t, 1)
	aFrames, _ := aCol.snapshot()
	bFrames, _ := bCol.snapshot()
	if bFrames[0] != "ping" || aFrames[0] != "pong" {
		t.Errorf("got %q / %q", bFrames[0], aFrames[0])
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Send(7, []byte("x")); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, "127.0.0.1:0", map[topology.NodeID]string{0: a.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, []byte("x")); err == nil {
		t.Error("send after close should fail")
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	_ = a.Close()
}

func TestTCPLargeFrame(t *testing.T) {
	col := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(col.handler)
	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{1: server.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	big := make([]byte, 1<<20) // 1 MiB, heartbeat-snapshot scale
	for i := range big {
		big[i] = byte(i)
	}
	if err := client.Send(1, big); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	frames, _ := col.snapshot()
	if len(frames[0]) != len(big) {
		t.Fatalf("size = %d, want %d", len(frames[0]), len(big))
	}
	if frames[0] != string(big) {
		t.Error("large frame corrupted")
	}
}

// sendOnly is a minimal Transport without the BatchSender fast path, for
// exercising the SendN shim.
type sendOnly struct {
	sent      int
	fail      bool
	failAfter int // when > 0, Send fails once this many copies succeeded
}

func (s *sendOnly) Local() topology.NodeID { return 0 }
func (s *sendOnly) SetHandler(Handler)     {}
func (s *sendOnly) Close() error           { return nil }
func (s *sendOnly) Send(topology.NodeID, []byte) error {
	if s.fail || (s.failAfter > 0 && s.sent >= s.failAfter) {
		return fmt.Errorf("boom")
	}
	s.sent++
	return nil
}

func TestSendNShimLoopsOverSend(t *testing.T) {
	s := &sendOnly{}
	sent, err := SendN(s, 1, []byte("x"), 5)
	if err != nil || sent != 5 {
		t.Fatalf("shim: sent=%d err=%v, want 5 copies", sent, err)
	}
	if s.sent != 5 {
		t.Fatalf("shim sent %d copies, want 5", s.sent)
	}
	if sent, err := SendN(s, 1, []byte("x"), 0); err != nil || sent != 0 || s.sent != 5 {
		t.Fatal("n <= 0 must be a no-op")
	}
	if sent, err := SendN(&sendOnly{fail: true}, 1, []byte("x"), 3); err == nil || sent != 0 {
		t.Fatalf("shim must surface Send errors: sent=%d err=%v", sent, err)
	}
}

// TestSendNShimCountsPartialSuccess pins the best-effort accounting the
// broadcast datapath relies on: a mid-burst failure must not erase the
// copies that did go out.
func TestSendNShimCountsPartialSuccess(t *testing.T) {
	s := &sendOnly{failAfter: 2}
	sent, err := SendN(s, 1, []byte("x"), 5)
	if err == nil {
		t.Fatal("partial failure must surface the error")
	}
	if sent != 2 {
		t.Fatalf("sent = %d, want the 2 copies that succeeded", sent)
	}
}

func TestFabricSendNDeliversAllCopies(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if sent, err := SendN(a, 1, []byte("burst"), 7); err != nil || sent != 7 {
		t.Fatalf("sent=%d err=%v", sent, err)
	}
	col.wait(t, 7)
	frames, froms := col.snapshot()
	if len(frames) != 7 {
		t.Fatalf("delivered %d copies, want 7", len(frames))
	}
	for i := range frames {
		if frames[i] != "burst" || froms[i] != 0 {
			t.Fatalf("copy %d corrupted: %q from %d", i, frames[i], froms[i])
		}
	}
	if s := f.Stats(); s.Sent != 7 || s.Lost != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFabricSendNSamplesLossPerCopy holds the protocol's reliability
// model: a batch of n copies must lose each copy independently, not all
// or nothing.
func TestFabricSendNSamplesLossPerCopy(t *testing.T) {
	f := NewFabric(FabricOptions{Seed: 7})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := f.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}

	const batches, per = 400, 5
	for i := 0; i < batches; i++ {
		if _, err := SendN(a, 1, []byte("x"), per); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Sent != batches*per {
		t.Fatalf("sent = %d, want %d", s.Sent, batches*per)
	}
	frac := float64(s.Lost) / float64(s.Sent)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("loss fraction = %v, want ≈0.5 (per-copy sampling)", frac)
	}
	col.wait(t, s.Sent-s.Lost)
}

// TestTCPSendNSingleFlush is the batching acceptance hook: n copies must
// reach the peer as n frames while costing exactly one socket flush.
func TestTCPSendNSingleFlush(t *testing.T) {
	col := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(col.handler)
	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{1: server.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	const copies = 9
	frame := []byte("replicated frame")
	if sent, err := SendN(client, 1, frame, copies); err != nil || sent != copies {
		t.Fatalf("sent=%d err=%v", sent, err)
	}
	st := client.Stats()
	if st.Flushes != 1 {
		t.Errorf("SendN(%d) cost %d flushes, want exactly 1", copies, st.Flushes)
	}
	if st.FramesSent != copies {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, copies)
	}
	if want := copies * (4 + len(frame)); st.BytesSent != want {
		t.Errorf("BytesSent = %d, want %d", st.BytesSent, want)
	}
	col.wait(t, copies)
	frames, _ := col.snapshot()
	for i, fr := range frames {
		if fr != string(frame) {
			t.Fatalf("copy %d corrupted: %q", i, fr)
		}
	}

	// A plain Send is the n=1 case of the same path: one more flush.
	if err := client.Send(1, frame); err != nil {
		t.Fatal(err)
	}
	if st = client.Stats(); st.Flushes != 2 || st.FramesSent != copies+1 {
		t.Errorf("after Send: stats = %+v", st)
	}
}

// TestSendFramesShimFallsBackToSendN: the helper degrades to a per-entry
// SendN loop on transports without the multi-frame fast path, skipping
// non-positive copy counts and keeping exact accounting.
func TestSendFramesShimFallsBackToSendN(t *testing.T) {
	s := &sendOnly{}
	batch := []FrameBatch{
		{Frame: []byte("a"), Copies: 2},
		{Frame: []byte("b"), Copies: 0}, // skipped
		{Frame: []byte("c"), Copies: 3},
	}
	sent, err := SendFrames(s, 1, batch)
	if err != nil || sent != 5 {
		t.Fatalf("shim: sent=%d err=%v, want 5", sent, err)
	}
	if s.sent != 5 {
		t.Fatalf("transport saw %d sends, want 5", s.sent)
	}
	if sent, err := SendFrames(s, 1, []FrameBatch{{Frame: []byte("x"), Copies: 0}}); err != nil || sent != 0 {
		t.Fatal("an all-zero batch must be a no-op")
	}
}

// TestFabricSendFramesDeliversBatch: the fabric's multi-frame fast path
// delivers every copy of every distinct frame, in batch order, and the
// sender gets its buffers back (the fabric copies before enqueueing).
func TestFabricSendFramesDeliversBatch(t *testing.T) {
	f := NewFabric(FabricOptions{})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	frameA := []byte("alpha")
	frameB := []byte("beta")
	batch := []FrameBatch{
		{Frame: frameA, Copies: 2},
		{Frame: frameB, Copies: 0}, // skipped
		{Frame: frameB, Copies: 1},
	}
	if sent, err := SendFrames(a, 1, batch); err != nil || sent != 3 {
		t.Fatalf("sent=%d err=%v, want 3", sent, err)
	}
	// Ownership: the call only borrowed the buffers.
	frameA[0] = 'X'
	frameB[0] = 'X'

	col.wait(t, 3)
	frames, _ := col.snapshot()
	want := []string{"alpha", "alpha", "beta"}
	for i, w := range want {
		if frames[i] != w {
			t.Errorf("delivery %d = %q, want %q", i, frames[i], w)
		}
	}
	if s := f.Stats(); s.Sent != 3 || s.Lost != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFabricSendFramesSamplesLossPerCopy: a coalesced flush must keep
// the protocol's loss model — every copy of every frame sampled
// independently, not the flush as a unit.
func TestFabricSendFramesSamplesLossPerCopy(t *testing.T) {
	f := NewFabric(FabricOptions{Seed: 13})
	defer func() { _ = f.Close() }()
	a := f.Endpoint(0)
	b := f.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := f.SetLoss(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}

	const flushes, per = 400, 4
	for i := 0; i < flushes; i++ {
		batch := []FrameBatch{
			{Frame: []byte("one"), Copies: per / 2},
			{Frame: []byte("two"), Copies: per / 2},
		}
		if _, err := SendFrames(a, 1, batch); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Sent != flushes*per {
		t.Fatalf("sent = %d, want %d", s.Sent, flushes*per)
	}
	frac := float64(s.Lost) / float64(s.Sent)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("loss fraction = %v, want ≈0.5 (per-copy sampling)", frac)
	}
	col.wait(t, s.Sent-s.Lost)
}

// TestTCPSendFramesSingleFlush is the coalescing acceptance hook: a
// multi-frame batch must reach the peer as its expanded frame sequence
// while costing exactly one socket flush.
func TestTCPSendFramesSingleFlush(t *testing.T) {
	col := newCollector()
	server, err := NewTCP(1, "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	server.SetHandler(col.handler)
	client, err := NewTCP(0, "127.0.0.1:0", map[topology.NodeID]string{1: server.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	batch := []FrameBatch{
		{Frame: []byte("first"), Copies: 2},
		{Frame: []byte("second"), Copies: 1},
		{Frame: []byte("third"), Copies: 3},
	}
	total, bytes := 0, 0
	for _, e := range batch {
		total += e.Copies
		bytes += e.Copies * (4 + len(e.Frame))
	}
	if sent, err := SendFrames(client, 1, batch); err != nil || sent != total {
		t.Fatalf("sent=%d err=%v, want %d", sent, err, total)
	}
	st := client.Stats()
	if st.Flushes != 1 {
		t.Errorf("batch cost %d flushes, want exactly 1", st.Flushes)
	}
	if st.FramesSent != total {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, total)
	}
	if st.BytesSent != bytes {
		t.Errorf("BytesSent = %d, want %d", st.BytesSent, bytes)
	}

	col.wait(t, total)
	frames, _ := col.snapshot()
	want := []string{"first", "first", "second", "third", "third", "third"}
	for i, w := range want {
		if frames[i] != w {
			t.Errorf("delivery %d = %q, want %q", i, frames[i], w)
		}
	}
}
