package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"adaptivecast/internal/bayes"
	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// Binary framing (see the README "Wire format" section):
//
//	[0] magic 0xAC
//	[1] version (1, 2 or 3)
//	[2] kind (FrameHeartbeat | FrameData | FrameKnowledgeDelta | FrameJoin | FrameLeave)
//	payload…
//
// Version 2 differs from version 1 in exactly one place: a knowledge-
// delta payload carries one extra Cadence uvarint after the
// {Since, Ver, Ack} header. The encoder emits version 2 only for delta
// frames whose cadence is actually stretched (Cadence > 1); everything
// else — all heartbeat and data frames, and every classic one-frame-per-δ
// delta — stays a version-1 frame, byte-identical to what pre-cadence
// peers emit and decode. Old peers therefore interoperate untouched
// unless an operator turns adaptive cadence on against them.
//
// Version 3 adds dynamic membership: delta payloads gain an Epoch uvarint
// after Cadence (which is always present in a v3 delta, stretched or
// not), data payloads gain an Epoch uvarint after the piggyback section,
// and the FrameJoin / FrameLeave kinds carry a Membership payload. The
// encoder emits version 3 only when the epoch is nonzero (or for the
// membership kinds, which exist only then), so every static-cluster frame
// stays byte-identical to what v1/v2 peers emit and decode: epochs cost
// nothing until a membership change actually happens, and old peers
// interoperate in a static cluster by reading epoch-0 frames as their own.
//
// Version 4 adds capability negotiation and the quantized belief profile.
// A v4 heartbeat carries a Caps uvarint (the sender's highest supported
// wire version, ≥ 4 by construction) before its snapshot; a v4 delta
// carries the same uvarint after Epoch; a v4 join appends the subject's
// Caps after the neighbor list. Inside a v4 frame, estimator states may
// use two additional layouts — flagQUniform and flagQWindow — that ship
// log beliefs (and refined midpoints) as uint16 fixed-point codes over a
// shared scale instead of float64s (see internal/bayes/quant.go for the
// scheme and its ≤1e-3 error budget). The encoder emits version 4 only
// when Caps is set, which the node does only toward peers that advertised
// v4 themselves (or as a periodic capability hello), so every frame to a
// non-v4 peer stays byte-identical to the v3-era encoding. Data frames
// never encode as v4: they are encoded once and relayed verbatim across
// peers with mixed capabilities, so their estimates always ride the raw
// profile. Leave frames also stay v3 (a departing node has nothing to
// negotiate).
//
// Integers are varints (unsigned for sequence numbers, lengths and
// counts; zigzag for node IDs, distortions and allocations, which can be
// negative sentinels), floats are 8-byte little-endian IEEE 754, byte
// strings are length-prefixed. A Bayesian estimator whose midpoints are
// the standard uniform grid — every estimator that was never refined —
// ships only its interval count; refined grids ship their midpoints
// explicitly.

const (
	magic       = 0xAC
	version     = 1
	version2    = 2 // delta frames carrying a stretched Cadence
	version3    = 3 // nonzero membership epoch; join/leave frames
	version4    = 4 // capability advert; quantized belief profile
	headerSize  = 3
	flagUniform = 1 << 0 // estimator state: midpoints are the uniform grid
	flagRefined = 0      // (midpoints explicit; no flag bits set)

	// Quantized estimator layouts, legal only inside version-4 frames.
	// flagQUniform is flagUniform's quantized twin (uniform grid, count
	// only); flagQWindow carries a refined grid with exact first/last
	// midpoints and uint16 interior codes. The raw layouts stay legal in
	// v4 frames — the encoder falls back to them for degenerate states.
	flagQUniform = 2
	flagQWindow  = 3
)

// appendUvarint, appendVarint etc. build on the stdlib append helpers; a
// thin reader with a sticky error handles the inbound direction so the
// decoder reads straight-line without per-field error plumbing.

type reader struct {
	b      []byte
	off    int
	ver    byte // frame version from the header; gates v4-only layouts
	borrow bool // byte fields alias b instead of copying (DecodeBorrow)
	err    error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated frame")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and bounds it by the bytes still in the
// frame (every element takes at least one byte), so a hostile length
// prefix cannot drive a giant allocation.
func (r *reader) count(what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()) {
		r.fail("%s count %d exceeds frame", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("truncated float")
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

// floats reads n 8-byte floats, bounds-checked up front.
func (r *reader) floats(n int, what string) []float64 {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < 8*n {
		r.fail("%s: %d floats exceed frame", what, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

// caps reads a version-4 capability advert: the sender's highest
// supported wire version. A v4 frame advertising less than v4 is
// self-contradictory and rejected.
func (r *reader) caps() uint64 {
	v := r.uvarint()
	if r.err == nil && (v < version4 || v > MaxCaps) {
		r.fail("v4 frame advertises caps %d", v)
	}
	return v
}

func (r *reader) uint16v() uint16 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 2 {
		r.fail("truncated fixed-point code")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) bytes(what string) []byte {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.borrow {
		out := r.b[r.off : r.off+n : r.off+n]
		r.off += n
		return out
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

// nodeID decodes a zigzag-encoded topology.NodeID (which may legitimately
// be the None sentinel inside parent vectors).
func (r *reader) nodeID() topology.NodeID { return topology.NodeID(r.varint()) }

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendFloats(b []byte, fs []float64) []byte {
	for _, f := range fs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// ---------------------------------------------------------------------------
// Estimator state
// ---------------------------------------------------------------------------

func appendEstimator(b []byte, s *bayes.State) []byte {
	if s.HasUniformMids() {
		b = append(b, flagUniform)
		b = binary.AppendUvarint(b, uint64(len(s.Mids)))
	} else {
		b = append(b, flagRefined)
		b = binary.AppendUvarint(b, uint64(len(s.Mids)))
		b = appendFloats(b, s.Mids)
	}
	b = binary.AppendUvarint(b, uint64(len(s.LogBeliefs)))
	b = appendFloats(b, s.LogBeliefs)
	return b
}

func (r *reader) estimator() bayes.State {
	var s bayes.State
	flags := r.byte()
	switch flags {
	case flagUniform:
		// Uniform grids ship only the interval count; each belief below is
		// 8 bytes, so cap the count by the remaining frame the same way
		// explicit float arrays are capped.
		u := r.uvarint()
		if r.err != nil {
			return s
		}
		if u > uint64(r.remaining()/8+1) {
			r.fail("uniform grid count %d exceeds frame", u)
			return s
		}
		s.Mids = bayes.UniformGridMids(int(u))
	case flagRefined:
		n := r.count("midpoints")
		s.Mids = r.floats(n, "midpoints")
	case flagQUniform:
		if r.ver < version4 {
			r.fail("quantized estimator in a version-%d frame", r.ver)
			return s
		}
		// One count serves both mids and beliefs; each belief below takes
		// 2 bytes.
		u := r.uvarint()
		if r.err != nil {
			return s
		}
		if u > uint64(r.remaining()/2+1) {
			r.fail("quantized grid count %d exceeds frame", u)
			return s
		}
		s.Mids = bayes.UniformGridMids(int(u))
		s.LogBeliefs = r.qbeliefs(int(u))
		return s
	case flagQWindow:
		if r.ver < version4 {
			r.fail("quantized estimator in a version-%d frame", r.ver)
			return s
		}
		u := r.uvarint()
		if r.err != nil {
			return s
		}
		if u < 2 || u > uint64(r.remaining()/2+1) {
			r.fail("quantized window count %d invalid", u)
			return s
		}
		first, last := r.float(), r.float()
		if r.err != nil {
			return s
		}
		// Clamp the support window at decode so a hostile frame cannot
		// smuggle out-of-(0,1) midpoints through the dequantizer.
		if !(first > 0 && first < 1) || !(last > first && last < 1) {
			r.fail("quantized window [%v,%v] outside (0,1)", first, last)
			return s
		}
		mids := make([]float64, u)
		mids[0], mids[u-1] = first, last
		for i := 1; i < int(u)-1 && r.err == nil; i++ {
			mids[i] = bayes.DequantizeMid(r.uint16v(), first, last)
		}
		if r.err != nil {
			return s
		}
		s.Mids = mids
		s.LogBeliefs = r.qbeliefs(int(u))
		return s
	default:
		r.fail("unknown estimator flags %#x", flags)
		return s
	}
	n := r.count("beliefs")
	s.LogBeliefs = r.floats(n, "beliefs")
	return s
}

// qbeliefs reads a quantized log-belief block: a shared float64 scale
// followed by n uint16 codes. The scale is clamped into
// [bayes.BeliefFloor, 0] and the block re-normalized to a 0 maximum, so
// a quantized merge can never produce out-of-support estimates no matter
// what a hostile frame ships.
func (r *reader) qbeliefs(n int) []float64 {
	scale := r.float()
	if r.err != nil {
		return nil
	}
	if math.IsNaN(scale) || scale > 0 {
		r.fail("quantized belief scale %v invalid", scale)
		return nil
	}
	if scale < bayes.BeliefFloor {
		scale = bayes.BeliefFloor
	}
	if r.remaining() < 2*n {
		r.fail("beliefs: %d fixed-point codes exceed frame", n)
		return nil
	}
	out := make([]float64, n)
	maxLb := math.Inf(-1)
	for i := range out {
		out[i] = bayes.DequantizeBelief(r.uint16v(), scale)
		if out[i] > maxLb {
			maxLb = out[i]
		}
	}
	// Honest blocks always contain a code-0 belief (the estimator rebases
	// its maximum to 0 before encoding), making this a no-op; rebase here
	// anyway so decoded beliefs always satisfy the ≤0 support invariant
	// with a representable maximum.
	if n > 0 && maxLb < 0 {
		for i := range out {
			out[i] -= maxLb
		}
	}
	return out
}

// appendEstimatorQuant is appendEstimator in the v4 quantized profile:
// beliefs (and refined midpoints) ship as uint16 fixed-point codes over
// a shared scale. Degenerate states — too few intervals, mismatched
// lengths, a collapsed refined window — fall back to the raw layout,
// which stays legal inside v4 frames.
func appendEstimatorQuant(b []byte, s *bayes.State) []byte {
	u := len(s.Mids)
	if u < 2 || len(s.LogBeliefs) != u {
		return appendEstimator(b, s)
	}
	if s.HasUniformMids() {
		b = append(b, flagQUniform)
		b = binary.AppendUvarint(b, uint64(u))
	} else {
		first, last := s.Mids[0], s.Mids[u-1]
		if !(first > 0 && first < 1) || !(last > first && last < 1) {
			return appendEstimator(b, s)
		}
		b = append(b, flagQWindow)
		b = binary.AppendUvarint(b, uint64(u))
		b = appendFloat(b, first)
		b = appendFloat(b, last)
		for _, m := range s.Mids[1 : u-1] {
			b = binary.LittleEndian.AppendUint16(b, bayes.QuantizeMid(m, first, last))
		}
	}
	scale := bayes.BeliefQuantScale(s.LogBeliefs)
	b = appendFloat(b, scale)
	for _, lb := range s.LogBeliefs {
		b = binary.LittleEndian.AppendUint16(b, bayes.QuantizeBelief(lb, scale))
	}
	return b
}

// ---------------------------------------------------------------------------
// Knowledge snapshots
// ---------------------------------------------------------------------------

// estimatorSize is a pre-allocation estimate for one serialized
// estimator. It deliberately over-estimates by counting the midpoints
// even when the uniform fast path will omit them, so sizing never pays
// the uniformity check (appendEstimator computes it exactly once).
func estimatorSize(s *bayes.State) int {
	return 1 + 2*binary.MaxVarintLen32 + 8*len(s.LogBeliefs) + 8*len(s.Mids)
}

func snapshotSize(s *knowledge.Snapshot) int {
	n := 4 * binary.MaxVarintLen64
	for i := range s.Procs {
		n += 2*binary.MaxVarintLen64 + estimatorSize(&s.Procs[i].Est)
	}
	for i := range s.Links {
		n += 3*binary.MaxVarintLen64 + estimatorSize(&s.Links[i].Est)
	}
	return n
}

// appendSnapshot writes a snapshot's record section. quant selects the
// v4 quantized estimator profile; callers must pass false unless the
// surrounding frame encodes as version 4.
func appendSnapshot(b []byte, s *knowledge.Snapshot, quant bool) []byte {
	b = binary.AppendVarint(b, int64(s.From))
	b = binary.AppendUvarint(b, s.Seq)
	b = binary.AppendUvarint(b, uint64(len(s.Procs)))
	for i := range s.Procs {
		pr := &s.Procs[i]
		b = binary.AppendVarint(b, int64(pr.ID))
		b = binary.AppendVarint(b, int64(pr.Dist))
		if quant {
			b = appendEstimatorQuant(b, &pr.Est)
		} else {
			b = appendEstimator(b, &pr.Est)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Links)))
	for i := range s.Links {
		lr := &s.Links[i]
		b = binary.AppendVarint(b, int64(lr.Link.A))
		b = binary.AppendVarint(b, int64(lr.Link.B))
		b = binary.AppendVarint(b, int64(lr.Dist))
		if quant {
			b = appendEstimatorQuant(b, &lr.Est)
		} else {
			b = appendEstimator(b, &lr.Est)
		}
	}
	return b
}

func (r *reader) snapshot() *knowledge.Snapshot {
	s := &knowledge.Snapshot{
		From: r.nodeID(),
		Seq:  r.uvarint(),
	}
	nProcs := r.count("proc records")
	if r.err != nil {
		return nil
	}
	if nProcs > 0 {
		s.Procs = make([]knowledge.ProcRecord, 0, nProcs)
	}
	for i := 0; i < nProcs && r.err == nil; i++ {
		s.Procs = append(s.Procs, knowledge.ProcRecord{
			ID:   r.nodeID(),
			Dist: int(r.varint()),
			Est:  r.estimator(),
		})
	}
	nLinks := r.count("link records")
	if r.err != nil {
		return nil
	}
	if nLinks > 0 {
		s.Links = make([]knowledge.LinkRecord, 0, nLinks)
	}
	for i := 0; i < nLinks && r.err == nil; i++ {
		s.Links = append(s.Links, knowledge.LinkRecord{
			Link: topology.Link{A: r.nodeID(), B: r.nodeID()},
			Dist: int(r.varint()),
			Est:  r.estimator(),
		})
	}
	if r.err != nil {
		return nil
	}
	return s
}

// ---------------------------------------------------------------------------
// Knowledge deltas
// ---------------------------------------------------------------------------

func deltaSize(d *KnowledgeDelta) int {
	return 5*binary.MaxVarintLen64 + snapshotSize(d.Snap)
}

// appendDelta lays out the version bookkeeping before the record set, so
// the fixed-cost liveness header of a near-empty steady-state delta stays
// a handful of bytes. The cadence uvarint exists only in version-2+
// frames (version-1 frames imply cadence 1); the epoch uvarint only in
// version-3 frames (earlier versions imply epoch 0); the caps uvarint
// only in version-4 frames.
func appendDelta(b []byte, d *KnowledgeDelta, ver byte, quant bool) []byte {
	return appendSnapshot(appendDeltaHeader(b, d, ver), d.Snap, quant)
}

// appendDeltaHeader writes the delta's version bookkeeping without its
// record section, so the shared-cut fast path (AppendDeltaFrame) can
// splice a snapshot section that was encoded once for a whole group of
// neighbors.
func appendDeltaHeader(b []byte, d *KnowledgeDelta, ver byte) []byte {
	b = binary.AppendUvarint(b, d.Since)
	b = binary.AppendUvarint(b, d.Ver)
	b = binary.AppendUvarint(b, d.Ack)
	if ver >= version2 {
		b = binary.AppendUvarint(b, d.Cadence)
	}
	if ver >= version3 {
		b = binary.AppendUvarint(b, d.Epoch)
	}
	if ver >= version4 {
		b = binary.AppendUvarint(b, d.Caps)
	}
	return b
}

func (r *reader) delta(ver byte) *KnowledgeDelta {
	d := &KnowledgeDelta{
		Since:   r.uvarint(),
		Ver:     r.uvarint(),
		Ack:     r.uvarint(),
		Cadence: 1,
	}
	if ver >= version2 {
		if d.Cadence = r.uvarint(); d.Cadence == 0 {
			d.Cadence = 1 // 0 and 1 both mean the classic one frame per δ
		}
	}
	if ver >= version3 {
		d.Epoch = r.uvarint()
	}
	if ver >= version4 {
		d.Caps = r.caps()
	}
	d.Snap = r.snapshot()
	if r.err != nil {
		return nil
	}
	return d
}

// ---------------------------------------------------------------------------
// Data messages
// ---------------------------------------------------------------------------

func dataSize(m *DataMsg) int {
	n := 8*binary.MaxVarintLen64 + len(m.Parents)*binary.MaxVarintLen32 +
		len(m.AllocByNode)*binary.MaxVarintLen32 + len(m.Body) + 1
	if m.Piggyback != nil {
		n += snapshotSize(m.Piggyback)
	}
	return n
}

func appendData(b []byte, m *DataMsg, ver byte) []byte {
	b = binary.AppendVarint(b, int64(m.Origin))
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendVarint(b, int64(m.Root))
	b = binary.AppendUvarint(b, uint64(len(m.Parents)))
	for _, p := range m.Parents {
		b = binary.AppendVarint(b, int64(p))
	}
	b = binary.AppendUvarint(b, uint64(len(m.AllocByNode)))
	for _, a := range m.AllocByNode {
		b = binary.AppendVarint(b, int64(a))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Body)))
	b = append(b, m.Body...)
	if m.Piggyback != nil {
		// Data frames never encode as v4 (they are relayed verbatim across
		// mixed-capability peers), so the piggyback is always raw-profile.
		b = append(b, 1)
		b = appendSnapshot(b, m.Piggyback, false)
	} else {
		b = append(b, 0)
	}
	if ver >= version3 {
		b = binary.AppendUvarint(b, m.Epoch)
	}
	return b
}

func (r *reader) data(ver byte) *DataMsg {
	m := &DataMsg{
		Origin: r.nodeID(),
		Seq:    r.uvarint(),
		Root:   r.nodeID(),
	}
	nParents := r.count("parents")
	if nParents > 0 {
		m.Parents = make([]topology.NodeID, 0, nParents)
	}
	for i := 0; i < nParents && r.err == nil; i++ {
		m.Parents = append(m.Parents, r.nodeID())
	}
	nAlloc := r.count("allocations")
	if nAlloc > 0 {
		m.AllocByNode = make([]int32, 0, nAlloc)
	}
	for i := 0; i < nAlloc && r.err == nil; i++ {
		v := r.varint()
		if v < math.MinInt32 || v > math.MaxInt32 {
			r.fail("allocation %d overflows int32", v)
			return nil
		}
		m.AllocByNode = append(m.AllocByNode, int32(v))
	}
	m.Body = r.bytes("body")
	switch r.byte() {
	case 0:
	case 1:
		m.Piggyback = r.snapshot()
	default:
		r.fail("bad piggyback flag")
	}
	if ver >= version3 {
		m.Epoch = r.uvarint()
	}
	if r.err != nil {
		return nil
	}
	return m
}

// ---------------------------------------------------------------------------
// Membership announcements (join / leave)
// ---------------------------------------------------------------------------

func membershipSize(m *Membership) int {
	return (6 + len(m.Departed) + len(m.Neighbors)) * binary.MaxVarintLen64
}

func appendMembership(b []byte, m *Membership, ver byte) []byte {
	b = binary.AppendVarint(b, int64(m.Node))
	b = binary.AppendUvarint(b, m.Epoch)
	b = binary.AppendUvarint(b, uint64(m.NumProcs))
	b = binary.AppendUvarint(b, uint64(len(m.Departed)))
	for _, d := range m.Departed {
		b = binary.AppendVarint(b, int64(d))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Neighbors)))
	for _, nb := range m.Neighbors {
		b = binary.AppendVarint(b, int64(nb))
	}
	if ver >= version4 {
		b = binary.AppendUvarint(b, m.Caps)
	}
	return b
}

func (r *reader) membership() *Membership {
	m := &Membership{
		Node:  r.nodeID(),
		Epoch: r.uvarint(),
	}
	np := r.uvarint()
	if np > uint64(math.MaxInt32) {
		r.fail("membership process count %d too large", np)
		return nil
	}
	m.NumProcs = int(np)
	nDep := r.count("departed processes")
	if nDep > 0 {
		m.Departed = make([]topology.NodeID, 0, nDep)
	}
	for i := 0; i < nDep && r.err == nil; i++ {
		m.Departed = append(m.Departed, r.nodeID())
	}
	nNbs := r.count("joiner links")
	if nNbs > 0 {
		m.Neighbors = make([]topology.NodeID, 0, nNbs)
	}
	for i := 0; i < nNbs && r.err == nil; i++ {
		m.Neighbors = append(m.Neighbors, r.nodeID())
	}
	if r.ver >= version4 {
		m.Caps = r.caps()
	}
	if r.err != nil {
		return nil
	}
	return m
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

// frameVersion picks the wire version a frame encodes as. The rule is
// always "oldest layout that can carry the payload", so static-cluster
// frames stay byte-identical to v1/v2 peers (the golden interop test
// pins this).
func frameVersion(f *Frame) byte {
	switch f.Kind {
	case FrameHeartbeat:
		if f.Caps > 0 {
			// Only a capability advert (and the quantized profile it
			// unlocks) needs the v4 layout.
			return version4
		}
	case FrameData:
		if f.Data.Epoch > 0 {
			// Only a grown/shrunk cluster needs the epoch fence; static
			// clusters stay byte-identical to v1 peers.
			return version3
		}
	case FrameKnowledgeDelta:
		return deltaVersion(f.Delta)
	case FrameJoin:
		if f.Member.Caps > 0 {
			return version4
		}
		// Membership kinds exist only since v3; no older layout to match.
		return version3
	case FrameLeave:
		return version3
	}
	return version
}

// deltaVersion is frameVersion for the delta payload alone, shared with
// the pre-encoded-section fast path (AppendDeltaFrame).
func deltaVersion(d *KnowledgeDelta) byte {
	if d.Caps > 0 {
		return version4
	}
	if d.Epoch > 0 {
		return version3
	}
	if d.Cadence > 1 {
		// Only a stretched cadence needs the v2 layout; the classic
		// one-frame-per-δ delta stays byte-identical to v1 peers.
		return version2
	}
	return version
}

// frameSize over-estimates the encoded size of a validated frame, for
// pre-sizing fresh buffers.
func frameSize(f *Frame) int {
	size := headerSize
	switch f.Kind {
	case FrameHeartbeat:
		size += snapshotSize(f.Heartbeat) + binary.MaxVarintLen64
	case FrameData:
		size += dataSize(f.Data) + binary.MaxVarintLen64
	case FrameKnowledgeDelta:
		size += deltaSize(f.Delta)
	case FrameJoin, FrameLeave:
		size += membershipSize(f.Member)
	}
	return size
}

// appendFrameBytes appends the full encoding (header + payload) of a
// validated frame to b. It allocates nothing beyond growing b.
func appendFrameBytes(b []byte, f *Frame) []byte {
	ver := frameVersion(f)
	quant := f.Quant && ver >= version4
	b = append(b, magic, ver, byte(f.Kind))
	switch f.Kind {
	case FrameHeartbeat:
		if ver >= version4 {
			b = binary.AppendUvarint(b, f.Caps)
		}
		b = appendSnapshot(b, f.Heartbeat, quant)
	case FrameData:
		b = appendData(b, f.Data, ver)
	case FrameKnowledgeDelta:
		b = appendDelta(b, f.Delta, ver, quant)
	case FrameJoin, FrameLeave:
		b = appendMembership(b, f.Member, ver)
	}
	return b
}

func encodeBinary(f *Frame) ([]byte, error) {
	return appendFrameBytes(make([]byte, 0, frameSize(f)), f), nil
}

func decodeBinary(b []byte, borrow bool) (*Frame, error) {
	if len(b) < headerSize {
		return nil, errors.New("wire: frame shorter than header")
	}
	if b[0] != magic {
		return nil, fmt.Errorf("wire: bad magic %#x", b[0])
	}
	if b[1] < version || b[1] > version4 {
		return nil, fmt.Errorf("wire: unsupported version %d", b[1])
	}
	f := &Frame{Kind: FrameKind(b[2])}
	r := &reader{b: b, off: headerSize, ver: b[1], borrow: borrow}
	switch f.Kind {
	case FrameHeartbeat:
		if r.ver >= version4 {
			f.Caps = r.caps()
		}
		f.Heartbeat = r.snapshot()
	case FrameData:
		if r.ver >= version4 {
			// Data frames are encoded once and relayed verbatim across
			// peers with mixed capabilities; they never ride v4.
			return nil, errors.New("wire: data frame at version 4")
		}
		f.Data = r.data(b[1])
	case FrameKnowledgeDelta:
		f.Delta = r.delta(b[1])
	case FrameJoin, FrameLeave:
		if b[1] < version3 {
			return nil, fmt.Errorf("wire: membership frame at version %d", b[1])
		}
		f.Member = r.membership()
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", f.Kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b)-r.off)
	}
	return f, nil
}
