package wire

import (
	"embed"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The committed FuzzDecode seed corpus is embedded so adversarial
// harnesses (the byzantine-replay scenario) can replay every seed at a
// live cluster without knowing where the package sources live on disk.
//
//go:embed testdata/fuzz/FuzzDecode/*
var corpusFS embed.FS

// CorpusSeed is one committed fuzz seed: its file name and the raw frame
// bytes it encodes.
type CorpusSeed struct {
	Name string
	Data []byte
}

// CorpusSeeds returns every committed FuzzDecode corpus seed, sorted by
// name. The corpus is the codec's catalog of hostile-but-historical
// inputs: every frame shape every wire version ever produced, exactly as
// a malicious or ancient peer could replay them.
func CorpusSeeds() ([]CorpusSeed, error) {
	const dir = "testdata/fuzz/FuzzDecode"
	entries, err := corpusFS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wire: embedded corpus: %w", err)
	}
	seeds := make([]CorpusSeed, 0, len(entries))
	for _, e := range entries {
		raw, err := corpusFS.ReadFile(dir + "/" + e.Name())
		if err != nil {
			return nil, fmt.Errorf("wire: embedded corpus %s: %w", e.Name(), err)
		}
		b, ok := corpusBytes(string(raw))
		if !ok {
			return nil, fmt.Errorf("wire: corpus seed %s is not a parseable go-fuzz file", e.Name())
		}
		seeds = append(seeds, CorpusSeed{Name: e.Name(), Data: b})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Name < seeds[j].Name })
	return seeds, nil
}

// corpusBytes extracts the []byte value from a go-fuzz corpus file.
func corpusBytes(content string) ([]byte, bool) {
	lines := strings.Split(content, "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, false
	}
	for _, line := range lines[1:] {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "[]byte(")
		if !ok {
			continue
		}
		lit, ok := strings.CutSuffix(rest, ")")
		if !ok {
			continue
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, false
		}
		return []byte(s), true
	}
	return nil, false
}
