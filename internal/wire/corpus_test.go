package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/FuzzDecode from the canonical seed frames. It only writes
// when WIRE_WRITE_CORPUS=1 is set; a normal test run instead verifies
// that every committed seed still decodes, so corpus and codec cannot
// drift apart silently.
func TestWriteSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if os.Getenv("WIRE_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, frame := range seedFrames(t) {
			b, err := Encode(frame)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (regenerate with WIRE_WRITE_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	// Every committed seed must still decode, and together the seeds must
	// witness every (version, kind) header the canonical frames produce.
	// The wirekind analyzer audits the declared FrameKind×version pairs
	// against this same corpus; this gate keeps the corpus itself honest,
	// so neither side can rot without a red build.
	want := make(map[[2]byte]bool)
	for _, frame := range seedFrames(t) {
		b, err := Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		want[[2]byte{b[1], b[2]}] = true
	}
	got := make(map[[2]byte]bool)
	for _, e := range entries {
		name := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := corpusBytes(string(data))
		if !ok {
			t.Errorf("%s: not a parseable go-fuzz corpus file", name)
			continue
		}
		if _, err := Decode(b); err != nil {
			t.Errorf("%s: committed seed no longer decodes: %v", name, err)
			continue
		}
		if len(b) >= 3 {
			got[[2]byte{b[1], b[2]}] = true
		}
	}
	for hdr := range want {
		if !got[hdr] {
			t.Errorf("no committed seed covers version %d kind %d (regenerate with WIRE_WRITE_CORPUS=1)", hdr[0], hdr[1])
		}
	}
}

// TestCorpusSeedsMatchDisk pins the embedded corpus (what the
// byzantine-replay scenario feeds a live cluster) to the on-disk files a
// fuzz run reads: same count, same bytes, every seed decodable.
func TestCorpusSeedsMatchDisk(t *testing.T) {
	seeds, err := CorpusSeeds()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != len(entries) {
		t.Fatalf("embedded %d seeds, disk has %d", len(seeds), len(entries))
	}
	for _, s := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, s.Name))
		if err != nil {
			t.Fatal(err)
		}
		b, ok := corpusBytes(string(raw))
		if !ok {
			t.Fatalf("%s: unparseable on disk", s.Name)
		}
		if string(b) != string(s.Data) {
			t.Errorf("%s: embedded bytes differ from disk", s.Name)
		}
		if _, err := Decode(s.Data); err != nil {
			t.Errorf("%s: embedded seed does not decode: %v", s.Name, err)
		}
	}
}
