package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/FuzzDecode from the canonical seed frames. It only writes
// when WIRE_WRITE_CORPUS=1 is set; a normal test run instead verifies
// that every committed seed still decodes, so corpus and codec cannot
// drift apart silently.
func TestWriteSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if os.Getenv("WIRE_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, frame := range seedFrames(t) {
			b, err := Encode(frame)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (regenerate with WIRE_WRITE_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	// Every committed seed must still decode, and together the seeds must
	// witness every (version, kind) header the canonical frames produce.
	// The wirekind analyzer audits the declared FrameKind×version pairs
	// against this same corpus; this gate keeps the corpus itself honest,
	// so neither side can rot without a red build.
	want := make(map[[2]byte]bool)
	for _, frame := range seedFrames(t) {
		b, err := Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		want[[2]byte{b[1], b[2]}] = true
	}
	got := make(map[[2]byte]bool)
	for _, e := range entries {
		name := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := corpusBytes(string(data))
		if !ok {
			t.Errorf("%s: not a parseable go-fuzz corpus file", name)
			continue
		}
		if _, err := Decode(b); err != nil {
			t.Errorf("%s: committed seed no longer decodes: %v", name, err)
			continue
		}
		if len(b) >= 3 {
			got[[2]byte{b[1], b[2]}] = true
		}
	}
	for hdr := range want {
		if !got[hdr] {
			t.Errorf("no committed seed covers version %d kind %d (regenerate with WIRE_WRITE_CORPUS=1)", hdr[0], hdr[1])
		}
	}
}

// corpusBytes extracts the []byte value from a go-fuzz corpus file.
func corpusBytes(content string) ([]byte, bool) {
	lines := strings.Split(content, "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, false
	}
	for _, line := range lines[1:] {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "[]byte(")
		if !ok {
			continue
		}
		lit, ok := strings.CutSuffix(rest, ")")
		if !ok {
			continue
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, false
		}
		return []byte(s), true
	}
	return nil, false
}
