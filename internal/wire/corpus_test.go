package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/FuzzDecode from the canonical seed frames. It only writes
// when WIRE_WRITE_CORPUS=1 is set; a normal test run instead verifies
// that every committed seed still decodes, so corpus and codec cannot
// drift apart silently.
func TestWriteSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if os.Getenv("WIRE_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, frame := range seedFrames(t) {
			b, err := Encode(frame)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (regenerate with WIRE_WRITE_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
}
