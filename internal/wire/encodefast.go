package wire

// The zero-alloc encode datapath: append-style encoders that write into
// caller-owned (typically pooled) buffers instead of allocating per
// frame, plus the two structural-sharing fast paths the node's send
// pipeline is built on — shared delta cuts (encode the snapshot record
// section once per acked-base group of neighbors) and the piggybacked-
// forward splice (relays reuse the already-encoded data-message bytes
// instead of re-serializing per hop). Every function here produces
// byte-identical output to Encode for the same logical frame; the
// golden interop and byte-equality tests pin that.

import (
	"errors"
	"fmt"

	"adaptivecast/internal/knowledge"
)

// AppendFrame appends f's binary encoding to dst and returns the
// extended slice. It is Encode without the allocation: when dst has
// enough spare capacity nothing is allocated, which is what lets pooled
// send buffers make the steady-state encode path garbage-free. On error
// dst is returned unmodified.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if err := validate(f); err != nil {
		return dst, err
	}
	return appendFrameBytes(dst, f), nil
}

// EncodeInto encodes f into buf's storage, reusing its capacity:
// equivalent to AppendFrame(buf[:0], f). The returned slice shares
// buf's backing array unless the frame outgrew it.
func EncodeInto(buf []byte, f *Frame) ([]byte, error) {
	return AppendFrame(buf[:0], f)
}

// AppendSnapshotSection appends the wire form of a knowledge snapshot's
// record section to dst, in the raw (float64) estimator profile. The
// raw section layout is identical across all wire versions, which is
// what makes shared delta cuts sound: encode the section once per
// acked-base group of neighbors, then build each neighbor's frame around
// it with AppendDeltaFrame — per-neighbor fields (Ack, Cadence) and even
// the frame version may differ without invalidating the shared bytes.
//
// The quantized profile is the one exception: its estimator layouts are
// legal only inside version-4 frames, so a section encoded with
// AppendSnapshotSectionQuantized may only be spliced under a delta whose
// Caps is set. The node keys its shared-section cache on (cut, profile)
// accordingly.
func AppendSnapshotSection(dst []byte, s *knowledge.Snapshot) ([]byte, error) {
	if s == nil {
		return dst, errors.New("wire: nil snapshot")
	}
	return appendSnapshot(dst, s, false), nil
}

// AppendSnapshotSectionQuantized is AppendSnapshotSection in the v4
// quantized belief profile: uint16 fixed-point beliefs and refined
// midpoints over shared scales (see internal/bayes/quant.go). The
// resulting section may only ride version-4 frames — splice it only
// under deltas carrying a capability advert, toward peers that
// advertised v4 themselves.
func AppendSnapshotSectionQuantized(dst []byte, s *knowledge.Snapshot) ([]byte, error) {
	if s == nil {
		return dst, errors.New("wire: nil snapshot")
	}
	return appendSnapshot(dst, s, true), nil
}

// AppendDeltaFrame appends a complete knowledge-delta frame to dst,
// splicing in a record section pre-encoded with AppendSnapshotSection
// (or, when d.Caps is set, either section profile — the quantized one
// requires it) of d.Snap's records; d.Snap itself is not read and may be
// nil. The output is byte-identical to AppendFrame of the equivalent
// frame — version selection follows the same rules — at the cost of one
// header instead of a full snapshot walk per neighbor.
func AppendDeltaFrame(dst []byte, d *KnowledgeDelta, snapSection []byte) ([]byte, error) {
	if d == nil {
		return dst, errors.New("wire: nil delta")
	}
	if d.Since > d.Ver {
		return dst, fmt.Errorf("wire: delta base %d ahead of its version %d", d.Since, d.Ver)
	}
	if d.Cadence > MaxCadence {
		return dst, fmt.Errorf("wire: cadence %d exceeds the %d-period bound", d.Cadence, MaxCadence)
	}
	if d.Caps != 0 && (d.Caps < CapsQuantized || d.Caps > MaxCaps) {
		return dst, fmt.Errorf("wire: caps %d outside [%d,%d]", d.Caps, CapsQuantized, MaxCaps)
	}
	ver := deltaVersion(d)
	dst = append(dst, magic, ver, byte(FrameKnowledgeDelta))
	dst = appendDeltaHeader(dst, d, ver)
	return append(dst, snapSection...), nil
}

// SpliceDataPiggyback appends to dst a data frame equal to re-encoding
// raw — an already-encoded FrameData frame — with its piggyback section
// replaced by snap (nil clears it). Everything outside the piggyback
// section is copied verbatim, so a piggybacking relay re-serializes
// only its own snapshot, never the message prefix (origin, sequence,
// tree, allocation, body) or the epoch suffix. The frame version is
// raw's: the version depends only on the epoch, which a relay never
// changes (the epoch gate admitted the frame at our own epoch).
func SpliceDataPiggyback(dst, raw []byte, snap *knowledge.Snapshot) ([]byte, error) {
	flagOff, pbEnd, err := dataSpliceBounds(raw)
	if err != nil {
		return dst, err
	}
	dst = append(dst, raw[:flagOff]...)
	if snap != nil {
		// Data frames never ride v4 (the splice output keeps raw's
		// version), so the snapshot is always raw-profile.
		dst = append(dst, 1)
		dst = appendSnapshot(dst, snap, false)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, raw[pbEnd:]...), nil
}

// dataSpliceBounds walks an encoded FrameData frame and locates its
// piggyback section: flagOff is the offset of the piggyback flag byte,
// pbEnd the offset just past the section (flag plus optional snapshot).
// The walk skips field contents without materializing them, so a splice
// pays varint scans, never allocations or float conversions.
func dataSpliceBounds(raw []byte) (flagOff, pbEnd int, err error) {
	if len(raw) < headerSize {
		return 0, 0, errors.New("wire: frame shorter than header")
	}
	if raw[0] != magic {
		return 0, 0, fmt.Errorf("wire: bad magic %#x", raw[0])
	}
	if FrameKind(raw[2]) != FrameData {
		return 0, 0, fmt.Errorf("wire: splice on non-data frame kind %d", raw[2])
	}
	r := &reader{b: raw, off: headerSize}
	r.varint()  // origin
	r.uvarint() // seq
	r.varint()  // root
	for i, n := 0, r.count("parents"); i < n && r.err == nil; i++ {
		r.varint()
	}
	for i, n := 0, r.count("allocations"); i < n && r.err == nil; i++ {
		r.varint()
	}
	r.skip(r.count("body"), "body")
	flagOff = r.off
	switch r.byte() {
	case 0:
	case 1:
		r.skipSnapshot()
	default:
		r.fail("bad piggyback flag")
	}
	pbEnd = r.off
	if r.err != nil {
		return 0, 0, r.err
	}
	return flagOff, pbEnd, nil
}

// skip advances past n raw bytes.
func (r *reader) skip(n int, what string) {
	if r.err != nil {
		return
	}
	if n < 0 || r.remaining() < n {
		r.fail("%s: %d bytes exceed frame", what, n)
		return
	}
	r.off += n
}

// skipSnapshot advances past one encoded snapshot section without
// materializing records.
func (r *reader) skipSnapshot() {
	r.varint()  // from
	r.uvarint() // seq
	for i, n := 0, r.count("proc records"); i < n && r.err == nil; i++ {
		r.varint() // id
		r.varint() // dist
		r.skipEstimator()
	}
	for i, n := 0, r.count("link records"); i < n && r.err == nil; i++ {
		r.varint() // link a
		r.varint() // link b
		r.varint() // dist
		r.skipEstimator()
	}
}

// skipEstimator advances past one encoded estimator state.
func (r *reader) skipEstimator() {
	switch flags := r.byte(); flags {
	case flagUniform:
		r.uvarint() // interval count; nothing allocated, nothing to clamp
	case flagRefined:
		r.skip(8*r.count("midpoints"), "midpoints")
	default:
		r.fail("unknown estimator flags %#x", flags)
	}
	r.skip(8*r.count("beliefs"), "beliefs")
}
