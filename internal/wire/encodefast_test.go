package wire

import (
	"bytes"
	"testing"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// TestAppendFrameMatchesEncode pins the core contract of the fast path:
// for every canonical frame (all kinds, all wire versions), AppendFrame
// and EncodeInto produce bytes identical to Encode, and AppendFrame
// leaves an existing prefix untouched.
func TestAppendFrameMatchesEncode(t *testing.T) {
	for i, f := range seedFrames(t) {
		want, err := Encode(f)
		if err != nil {
			t.Fatalf("seed %d: Encode: %v", i, err)
		}

		got, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("seed %d: AppendFrame: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: AppendFrame bytes differ from Encode", i)
		}

		buf := make([]byte, 0, len(want)+64)
		got, err = EncodeInto(buf, f)
		if err != nil {
			t.Fatalf("seed %d: EncodeInto: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: EncodeInto bytes differ from Encode", i)
		}

		prefix := []byte("prefix")
		got, err = AppendFrame(append([]byte(nil), prefix...), f)
		if err != nil {
			t.Fatalf("seed %d: AppendFrame with prefix: %v", i, err)
		}
		if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("seed %d: AppendFrame with prefix corrupted the output", i)
		}
	}
}

// TestAppendFrameRejectsInvalid: the fast path applies the same
// validation as Encode and returns dst unmodified on error.
func TestAppendFrameRejectsInvalid(t *testing.T) {
	dst := []byte("keep")
	out, err := AppendFrame(dst, &Frame{Kind: FrameData})
	if err == nil {
		t.Fatal("AppendFrame accepted a data frame with no payload")
	}
	if !bytes.Equal(out, dst) {
		t.Fatalf("AppendFrame modified dst on error: %q", out)
	}
}

// TestAppendDeltaFrameMatchesEncode: building a delta frame around a
// pre-encoded snapshot section (the shared-cut path Tick uses) yields
// bytes identical to encoding the full frame, across every delta seed
// (partial, full-snapshot fallback, stretched cadence, epoch-tagged).
func TestAppendDeltaFrameMatchesEncode(t *testing.T) {
	for i, f := range seedFrames(t) {
		if f.Kind != FrameKnowledgeDelta {
			continue
		}
		want, err := Encode(f)
		if err != nil {
			t.Fatalf("seed %d: Encode: %v", i, err)
		}
		// The section profile follows the frame's: quantized seeds splice
		// a quantized section (the (cut, profile) cache key Tick uses).
		var section []byte
		if f.Quant {
			section, err = AppendSnapshotSectionQuantized(nil, f.Delta.Snap)
		} else {
			section, err = AppendSnapshotSection(nil, f.Delta.Snap)
		}
		if err != nil {
			t.Fatalf("seed %d: snapshot section: %v", i, err)
		}
		// The header must not read d.Snap: a shared cut is built for a
		// whole acked-base group and spliced under per-neighbor headers.
		d := *f.Delta
		d.Snap = nil
		got, err := AppendDeltaFrame(nil, &d, section)
		if err != nil {
			t.Fatalf("seed %d: AppendDeltaFrame: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: AppendDeltaFrame bytes differ from Encode", i)
		}
	}
}

// spliceSnapshots builds two distinct snapshots for splice tests.
func spliceSnapshots(t *testing.T) (a, b *knowledge.Snapshot) {
	t.Helper()
	v, err := knowledge.NewView(1, 5, []topology.NodeID{0, 2}, nil, knowledge.Params{Intervals: 8})
	if err != nil {
		t.Fatal(err)
	}
	v.BeginPeriod()
	a = v.Snapshot()
	v.BeginPeriod()
	v.BeginPeriod()
	b = v.Snapshot()
	return a, b
}

// TestSpliceDataPiggyback: replacing, adding, or stripping the piggyback
// section of an encoded data frame is byte-identical to re-encoding the
// frame with the new snapshot, for both plain (v1) and epoch-tagged (v3)
// data frames.
func TestSpliceDataPiggyback(t *testing.T) {
	snapA, snapB := spliceSnapshots(t)
	msgs := []*DataMsg{
		{Origin: 2, Seq: 7, Root: 2, Body: []byte("plain")},
		{
			Origin:      0,
			Seq:         1,
			Root:        0,
			Parents:     []topology.NodeID{topology.None, 0, 0},
			AllocByNode: []int32{0, 2, 1},
			Body:        []byte("tree"),
			Piggyback:   snapA,
		},
		{Origin: 2, Seq: 3, Root: 2, Body: []byte("epoch"), Epoch: 4, Piggyback: snapA},
	}
	for i, msg := range msgs {
		raw, err := Encode(&Frame{Kind: FrameData, Data: msg})
		if err != nil {
			t.Fatalf("msg %d: Encode: %v", i, err)
		}
		for _, snap := range []*knowledge.Snapshot{snapB, snapA, nil} {
			reencoded := *msg
			reencoded.Piggyback = snap
			want, err := Encode(&Frame{Kind: FrameData, Data: &reencoded})
			if err != nil {
				t.Fatalf("msg %d: Encode with replaced piggyback: %v", i, err)
			}
			got, err := SpliceDataPiggyback(nil, raw, snap)
			if err != nil {
				t.Fatalf("msg %d: SpliceDataPiggyback: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("msg %d: splice output differs from re-encoding (snap=%v)", i, snap != nil)
			}
		}
	}
}

// TestSpliceRejectsNonData: splicing is only defined over FrameData.
func TestSpliceRejectsNonData(t *testing.T) {
	snapA, _ := spliceSnapshots(t)
	raw, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snapA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpliceDataPiggyback(nil, raw, nil); err == nil {
		t.Fatal("SpliceDataPiggyback accepted a heartbeat frame")
	}
}

// TestEncodeDataFrameZeroAlloc is the allocation-regression gate for the
// hot broadcast path: encoding a data frame into a warm pooled buffer
// must not allocate at all. A regression here silently reintroduces
// per-broadcast garbage across every node in a cluster.
func TestEncodeDataFrameZeroAlloc(t *testing.T) {
	f := &Frame{Kind: FrameData, Data: &DataMsg{
		Origin:      0,
		Seq:         1,
		Root:        0,
		Parents:     []topology.NodeID{topology.None, 0, 0},
		AllocByNode: []int32{0, 2, 1},
		Body:        bytes.Repeat([]byte("x"), 256),
		Epoch:       2,
	}}
	buf := make([]byte, 0, 4096)
	if _, err := EncodeInto(buf, f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := EncodeInto(buf, f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("data-frame EncodeInto allocated %.1f times per op, want 0", allocs)
	}
}

// TestEncodeDeltaFrameAllocBound: assembling a delta frame from a shared
// pre-encoded cut stays within one allocation per op (the issue budget;
// measured today it is zero).
func TestEncodeDeltaFrameAllocBound(t *testing.T) {
	snapA, _ := spliceSnapshots(t)
	section, err := AppendSnapshotSection(make([]byte, 0, 8192), snapA)
	if err != nil {
		t.Fatal(err)
	}
	d := &KnowledgeDelta{Since: 3, Ver: 5, Ack: 9, Cadence: 2, Epoch: 4}
	buf := make([]byte, 0, len(section)+256)
	if _, err := AppendDeltaFrame(buf, d, section); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendDeltaFrame(buf[:0], d, section); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("delta-frame assembly allocated %.1f times per op, want <= 1", allocs)
	}
}

// TestSpliceZeroAlloc: a relay's piggyback strip into a warm buffer is
// allocation-free (the splice only scans varints and copies bytes).
func TestSpliceZeroAlloc(t *testing.T) {
	snapA, _ := spliceSnapshots(t)
	raw, err := Encode(&Frame{Kind: FrameData, Data: &DataMsg{
		Origin: 2, Seq: 7, Root: 2, Body: []byte("payload"), Piggyback: snapA,
	}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, len(raw))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := SpliceDataPiggyback(buf[:0], raw, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("piggyback strip allocated %.1f times per op, want 0", allocs)
	}
}
