package wire

import (
	"bytes"
	"encoding/hex"
	"testing"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// goldenFrames rebuilds the deterministic frames whose encodings were
// captured before epochs existed (wire v1/v2). goldenHex below is that
// capture; TestStaticFramesByteIdenticalToV2 pins the interop guarantee
// that an epoch-0 (static-cluster) frame still encodes to those exact
// bytes.
func goldenFrames(tb testing.TB) []*Frame {
	tb.Helper()
	v, err := knowledge.NewView(1, 5, []topology.NodeID{0, 2}, nil, knowledge.Params{Intervals: 8})
	if err != nil {
		tb.Fatal(err)
	}
	v.BeginPeriod()
	snap := v.Snapshot()
	baseVer := v.Version()
	v.BeginPeriod()
	delta, ok := v.DeltaSince(baseVer)
	if !ok {
		tb.Fatal("golden delta not anchorable")
	}
	return []*Frame{
		{Kind: FrameHeartbeat, Heartbeat: snap},
		{Kind: FrameData, Data: &DataMsg{Origin: 2, Seq: 7, Root: 2, Body: []byte("payload")}},
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9}},
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9, Cadence: 8}},
	}
}

// goldenHex was emitted by the wire v2 encoder (PR 4 era), before the
// Epoch field and the membership kinds existed.
var goldenHex = []string{
	"ac010102010102000108080000000000000000e0bcbbe12051c2bf9a86700e94d9d3bf511481faae58e0bfcd6bd0887363e8bf0b03ad7aea93f1bf348dedf741c0f9bf1f484d3916aa05c0020002000108080000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000002040001080800000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000",
	"ac01020407040000077061796c6f616400",
	"ac010301020902020102000108080000000000000000e0bcbbe12051d2bf9a86700e94d9e3bf521481faae58f0bfce6bd0887363f8bf0b03ad7aea9301c0348dedf741c009c01f484d3916aa15c000",
	"ac02030102090802020102000108080000000000000000e0bcbbe12051d2bf9a86700e94d9e3bf521481faae58f0bfce6bd0887363f8bf0b03ad7aea9301c0348dedf741c009c01f484d3916aa15c000",
}

// TestStaticFramesByteIdenticalToV2 is the acceptance-criteria interop
// test: frames of a static cluster (epoch 0) must encode byte-identically
// to the pre-epoch wire format, stretched-cadence v2 deltas included, so
// v1/v2 peers keep interoperating until a membership change happens.
func TestStaticFramesByteIdenticalToV2(t *testing.T) {
	frames := goldenFrames(t)
	if len(frames) != len(goldenHex) {
		t.Fatalf("%d golden frames, %d captures", len(frames), len(goldenHex))
	}
	for i, f := range frames {
		want, err := hex.DecodeString(goldenHex[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("golden frame %d drifted from the v2 encoding:\n got %x\nwant %x", i, got, want)
		}
	}
}

// TestEpochVersionSelection pins the version-byte policy: the epoch costs
// nothing until it is nonzero.
func TestEpochVersionSelection(t *testing.T) {
	v, err := knowledge.NewView(0, 2, []topology.NodeID{1}, nil, knowledge.Params{Intervals: 4})
	if err != nil {
		t.Fatal(err)
	}
	v.BeginPeriod()
	snap := v.Snapshot()
	cases := []struct {
		name string
		f    *Frame
		ver  byte
	}{
		{"static data", &Frame{Kind: FrameData, Data: &DataMsg{Origin: 0, Seq: 1, Root: 0}}, 1},
		{"epoch data", &Frame{Kind: FrameData, Data: &DataMsg{Origin: 0, Seq: 1, Root: 0, Epoch: 2}}, 3},
		{"static delta", &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap}}, 1},
		{"stretched delta", &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Cadence: 4}}, 2},
		{"epoch delta", &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Cadence: 4, Epoch: 1}}, 3},
		{"join", &Frame{Kind: FrameJoin, Member: &Membership{Node: 2, Epoch: 1, NumProcs: 3, Neighbors: []topology.NodeID{0}}}, 3},
		{"leave", &Frame{Kind: FrameLeave, Member: &Membership{Node: 1, Epoch: 2, NumProcs: 3, Departed: []topology.NodeID{1}}}, 3},
	}
	for _, c := range cases {
		b, err := Encode(c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if b[1] != c.ver {
			t.Errorf("%s: encoded as version %d, want %d", c.name, b[1], c.ver)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if !framesEqual(c.f, got) {
			t.Errorf("%s: round-trip drift", c.name)
		}
	}
}

// TestMembershipValidation rejects malformed join/leave payloads.
func TestMembershipValidation(t *testing.T) {
	bad := []*Frame{
		{Kind: FrameJoin},
		{Kind: FrameJoin, Member: &Membership{Node: 0, Epoch: 0, NumProcs: 1}},
		{Kind: FrameJoin, Member: &Membership{Node: 3, Epoch: 1, NumProcs: 3}},
		{Kind: FrameJoin, Member: &Membership{Node: 2, Epoch: 1, NumProcs: 3, Departed: []topology.NodeID{7}}},
		{Kind: FrameJoin, Member: &Membership{Node: 2, Epoch: 1, NumProcs: 3, Neighbors: []topology.NodeID{2}}},
		{Kind: FrameJoin, Member: &Membership{Node: 2, Epoch: 1, NumProcs: 3, Departed: []topology.NodeID{2}}},
		{Kind: FrameLeave, Member: &Membership{Node: 1, Epoch: 1, NumProcs: 3, Neighbors: []topology.NodeID{0}}},
	}
	for i, f := range bad {
		if _, err := Encode(f); err == nil {
			t.Errorf("bad membership frame %d encoded without error", i)
		}
	}
}

// TestDecodeBorrowAliasesBody pins the zero-copy contract: DecodeBorrow's
// body aliases the input buffer (no allocation), Decode's does not.
func TestDecodeBorrowAliasesBody(t *testing.T) {
	f := &Frame{Kind: FrameData, Data: &DataMsg{Origin: 1, Seq: 2, Root: 1, Body: []byte("zero-copy body"), Epoch: 3}}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}

	borrowed, err := DecodeBorrow(b)
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(f, borrowed) {
		t.Fatal("borrow decode drifted")
	}
	copied, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}

	// Mutating the input buffer must show through the borrowed body and
	// not through the copied one.
	for i := range b {
		b[i] ^= 0xFF
	}
	if bytes.Equal(borrowed.Data.Body, f.Data.Body) {
		t.Error("DecodeBorrow body did not alias the input buffer")
	}
	if !bytes.Equal(copied.Data.Body, f.Data.Body) {
		t.Error("Decode body aliased the input buffer")
	}
}
