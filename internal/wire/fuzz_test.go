package wire

import (
	"bytes"
	"math"
	"testing"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// seedFrames builds one representative frame of every shape the runtime
// produces; they seed the fuzz corpus (alongside the committed files under
// testdata/fuzz) and anchor the round-trip property test.
func seedFrames(tb testing.TB) []*Frame {
	tb.Helper()
	v, err := knowledge.NewView(1, 5, []topology.NodeID{0, 2}, nil, knowledge.Params{Intervals: 8})
	if err != nil {
		tb.Fatal(err)
	}
	v.BeginPeriod()
	snap := v.Snapshot()
	baseVer := v.Version()
	v.BeginPeriod()
	delta, ok := v.DeltaSince(baseVer)
	if !ok {
		tb.Fatal("seed delta not anchorable")
	}
	return []*Frame{
		{Kind: FrameHeartbeat, Heartbeat: snap},
		{Kind: FrameData, Data: &DataMsg{Origin: 2, Seq: 7, Root: 2, Body: []byte("payload")}},
		{Kind: FrameData, Data: &DataMsg{
			Origin:      0,
			Seq:         1,
			Root:        0,
			Parents:     []topology.NodeID{topology.None, 0, 0},
			AllocByNode: []int32{0, 2, 1},
			Body:        []byte("tree"),
			Piggyback:   snap,
		}},
		// A real partial delta and the full-snapshot fallback form
		// (Since == 0), so the new frame kind inherits the never-panic
		// and round-trip invariants.
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9}},
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: v.Snapshot(), Since: 0, Ver: v.Version(), Ack: 0}},
		// A stretched-cadence delta: encodes as wire version 2.
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9, Cadence: 8}},
		// Epoch-tagged data and delta frames (wire version 3), including a
		// tombstoned slot in the parent vector, and the membership kinds.
		{Kind: FrameData, Data: &DataMsg{
			Origin:  2,
			Seq:     3,
			Root:    2,
			Parents: []topology.NodeID{topology.None, topology.None, topology.None, 2},
			// node 0 departed (tombstoned slot), node 3 joined under root 2
			AllocByNode: []int32{0, 0, 0, 1},
			Body:        []byte("epoch"),
			Epoch:       4,
		}},
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9, Cadence: 2, Epoch: 4}},
		{Kind: FrameJoin, Member: &Membership{Node: 5, Epoch: 3, NumProcs: 6, Departed: []topology.NodeID{1}, Neighbors: []topology.NodeID{0, 2}}},
		{Kind: FrameLeave, Member: &Membership{Node: 1, Epoch: 4, NumProcs: 6, Departed: []topology.NodeID{1, 3}}},
		// Wire v4: capability-advertising frames. Quant is an encoder
		// directive (quantized belief profile), not a serialized field —
		// decoded frames carry Caps only. The uniform-grid delta and the
		// full heartbeat exercise flagQUniform; the refined snapshot
		// exercises flagQWindow; the caps-without-Quant delta pins that
		// raw estimator layouts stay legal inside v4 frames; the join
		// carries the subject's capability advert.
		{Kind: FrameKnowledgeDelta, Quant: true,
			Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9, Cadence: 2, Epoch: 4, Caps: CapsQuantized}},
		{Kind: FrameKnowledgeDelta, Quant: true,
			Delta: &KnowledgeDelta{Snap: v.Snapshot(), Since: 0, Ver: v.Version(), Caps: CapsQuantized}},
		{Kind: FrameKnowledgeDelta,
			Delta: &KnowledgeDelta{Snap: delta, Since: baseVer, Ver: v.Version(), Ack: 9, Caps: CapsQuantized}},
		{Kind: FrameKnowledgeDelta, Quant: true,
			Delta: &KnowledgeDelta{Snap: refinedSnapshot(tb), Since: 0, Ver: 1, Caps: CapsQuantized}},
		{Kind: FrameHeartbeat, Heartbeat: snap, Caps: CapsQuantized, Quant: true},
		{Kind: FrameJoin, Member: &Membership{Node: 5, Epoch: 3, NumProcs: 6, Departed: []topology.NodeID{1}, Neighbors: []topology.NodeID{0, 2}, Caps: CapsQuantized}},
	}
}

// refinedSnapshot builds a snapshot whose self-estimate carries a
// refined (non-uniform) grid, so quantized encodes hit the windowed
// midpoint layout (flagQWindow), not just the uniform one.
func refinedSnapshot(tb testing.TB) *knowledge.Snapshot {
	tb.Helper()
	v, err := knowledge.NewView(0, 3, []topology.NodeID{1}, nil, knowledge.Params{
		Intervals: 10, AutoRefine: true, RefineMinObs: 4, RefineMass: 0.1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v.BeginPeriod()
	}
	snap := v.Snapshot()
	for _, pr := range snap.Procs {
		if !pr.Est.HasUniformMids() {
			return snap
		}
	}
	tb.Fatal("fixture never produced a refined (non-uniform) grid")
	return nil
}

func nodeIDsEqual(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// estStatesEqual compares estimator states bit-for-bit (NaNs compare
// equal to themselves so arbitrary decoded floats still round-trip).
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func snapshotsEqual(a, b *knowledge.Snapshot) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.From != b.From || a.Seq != b.Seq ||
		len(a.Procs) != len(b.Procs) || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Procs {
		x, y := &a.Procs[i], &b.Procs[i]
		if x.ID != y.ID || x.Dist != y.Dist ||
			!floatsEqual(x.Est.Mids, y.Est.Mids) ||
			!floatsEqual(x.Est.LogBeliefs, y.Est.LogBeliefs) {
			return false
		}
	}
	for i := range a.Links {
		x, y := &a.Links[i], &b.Links[i]
		if x.Link != y.Link || x.Dist != y.Dist ||
			!floatsEqual(x.Est.Mids, y.Est.Mids) ||
			!floatsEqual(x.Est.LogBeliefs, y.Est.LogBeliefs) {
			return false
		}
	}
	return true
}

func framesEqual(a, b *Frame) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case FrameHeartbeat:
		return a.Caps == b.Caps && snapshotsEqual(a.Heartbeat, b.Heartbeat)
	case FrameKnowledgeDelta:
		// Cadence 0 and 1 are the same declaration (one frame per δ), so
		// they compare equal across a round-trip.
		normCad := func(c uint64) uint64 {
			if c == 0 {
				return 1
			}
			return c
		}
		return a.Delta.Since == b.Delta.Since && a.Delta.Ver == b.Delta.Ver &&
			a.Delta.Ack == b.Delta.Ack && normCad(a.Delta.Cadence) == normCad(b.Delta.Cadence) &&
			a.Delta.Epoch == b.Delta.Epoch && a.Delta.Caps == b.Delta.Caps &&
			snapshotsEqual(a.Delta.Snap, b.Delta.Snap)
	case FrameData:
		x, y := a.Data, b.Data
		if x.Origin != y.Origin || x.Seq != y.Seq || x.Root != y.Root ||
			x.Epoch != y.Epoch || !bytes.Equal(x.Body, y.Body) ||
			!nodeIDsEqual(x.Parents, y.Parents) {
			return false
		}
		if len(x.AllocByNode) != len(y.AllocByNode) {
			return false
		}
		for i := range x.AllocByNode {
			if x.AllocByNode[i] != y.AllocByNode[i] {
				return false
			}
		}
		return snapshotsEqual(x.Piggyback, y.Piggyback)
	case FrameJoin, FrameLeave:
		x, y := a.Member, b.Member
		return x.Node == y.Node && x.Epoch == y.Epoch && x.NumProcs == y.NumProcs && x.Caps == y.Caps &&
			nodeIDsEqual(x.Departed, y.Departed) && nodeIDsEqual(x.Neighbors, y.Neighbors)
	}
	return false
}

// FuzzDecode is the codec's safety net: Decode must never panic on
// arbitrary bytes, and any frame it accepts must re-encode and re-decode
// to an identical frame (Decode(Encode(f)) round-trips).
func FuzzDecode(f *testing.F) {
	for _, frame := range seedFrames(f) {
		b, err := Encode(frame)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{magic})
	f.Add([]byte{magic, version, byte(FrameData)})
	f.Add([]byte{magic, version, byte(FrameHeartbeat), 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return // malformed input rejected without panicking: fine
		}
		reencoded, err := Encode(frame)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		again, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !framesEqual(frame, again) {
			t.Fatalf("round-trip drift:\nfirst:  %+v\nsecond: %+v", frame, again)
		}
	})
}

// TestEncodeDecodeRoundTrip pins the round-trip property on the seed
// frames outside the fuzz engine, so `go test` alone covers it.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, frame := range seedFrames(t) {
		b, err := Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if frame.Quant {
			// The quantized profile is lossy exactly once: the first
			// decode lands on the fixed-point grid, and from there
			// encode/decode must be the identity (quantization is a
			// projection). Compare across a second round-trip.
			b2, err := Encode(got)
			if err != nil {
				t.Fatalf("decoded quantized frame failed to re-encode: %v", err)
			}
			again, err := Decode(b2)
			if err != nil {
				t.Fatal(err)
			}
			if !framesEqual(got, again) {
				t.Fatalf("quantized round-trip drift: %+v vs %+v", got, again)
			}
			continue
		}
		if !framesEqual(frame, got) {
			t.Fatalf("round-trip drift: %+v vs %+v", frame, got)
		}
	}
}
