package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"adaptivecast/internal/bayes"
	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// paperSnapshot builds a snapshot at the paper's estimator precision
// (U = 100) with a few links, the shape whose size the quantized profile
// is designed around.
func paperSnapshot(t *testing.T) *knowledge.Snapshot {
	t.Helper()
	v, err := knowledge.NewView(1, 8, []topology.NodeID{0, 2}, nil, knowledge.Params{Intervals: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v.BeginPeriod()
	}
	return v.Snapshot()
}

// TestQuantizedHeartbeatSizeRatio pins the tentpole's wire-level win: at
// the paper's U = 100, a quantized v4 heartbeat must be at least 1.7x
// smaller than the raw encoding of the same snapshot (measured ~3.7x —
// 2-byte codes replace 8-byte floats for every belief).
func TestQuantizedHeartbeatSizeRatio(t *testing.T) {
	snap := paperSnapshot(t)
	raw, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snap})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snap, Caps: CapsQuantized, Quant: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(raw)) / float64(len(quant))
	if ratio < 1.7 {
		t.Errorf("quantized heartbeat is %dB vs %dB raw — only %.2fx smaller, want >= 1.7x",
			len(quant), len(raw), ratio)
	}
	t.Logf("U=100 heartbeat: raw %dB, quantized %dB (%.2fx smaller)", len(raw), len(quant), ratio)
}

// TestQuantErrorBound is the satellite property test: across random
// lossy observation schedules — uniform and refined grids alike — a
// belief state that crosses the quantized wire moves its posterior mean
// by less than 1e-3, and further hops add nothing (the projection
// property makes re-encoding the decoded state byte-identical).
func TestQuantErrorBound(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			est := bayes.MustNew(100)
			p := rng.Float64() * 0.5 // the schedule's true loss rate
			steps := 1 + rng.Intn(400)
			for i := 0; i < steps; i++ {
				factor := 1 + rng.Intn(3)
				if rng.Float64() < p {
					est.ObserveFailure(factor)
				} else {
					est.ObserveSuccess(factor)
				}
			}
			if trial%3 == 0 {
				est = est.Refine() // exercise the windowed-midpoint layout
			}
			snap := &knowledge.Snapshot{
				From: 1, Seq: uint64(trial + 1),
				Procs: []knowledge.ProcRecord{{ID: 0, Dist: 1, Est: est.State()}},
			}
			frame := &Frame{Kind: FrameHeartbeat, Heartbeat: snap, Caps: CapsQuantized, Quant: true}
			b, err := Encode(frame)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bayes.NewFromState(f.Heartbeat.Procs[0].Est)
			if err != nil {
				t.Fatalf("seed %d trial %d: decoded state rejected: %v", seed, trial, err)
			}
			if diff := math.Abs(got.Mean() - est.Mean()); diff > 1e-3 {
				t.Errorf("seed %d trial %d: quantized mean diverged by %v (> 1e-3) after %d obs at p=%.3f",
					seed, trial, diff, steps, p)
			}
			// Second hop: re-encoding the decoded state must reproduce the
			// bytes exactly — multi-hop relays accumulate no further error.
			f.Quant, f.Caps = true, CapsQuantized
			b2, err := Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("seed %d trial %d: second quantized hop changed the bytes", seed, trial)
			}
		}
	}
}

// TestQuantizedDecodeRenormalizes pins the decode-side safety clamp: a
// belief block whose maximum drifts below 0 (a non-rebased sender) comes
// out of the wire re-normalized to a 0 maximum with the pairwise
// differences preserved, so a quantized merge can never inject
// out-of-support estimates.
func TestQuantizedDecodeRenormalizes(t *testing.T) {
	st := bayes.State{
		Mids:       bayes.UniformGridMids(4),
		LogBeliefs: []float64{-1, -2.5, -3, -1.5},
	}
	snap := &knowledge.Snapshot{
		From: 1, Seq: 1,
		Procs: []knowledge.ProcRecord{{ID: 0, Dist: 1, Est: st}},
	}
	b, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snap, Caps: CapsQuantized, Quant: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Heartbeat.Procs[0].Est.LogBeliefs
	maxLB := math.Inf(-1)
	for _, lb := range got {
		if lb > 0 {
			t.Fatalf("decoded log belief %v is positive", lb)
		}
		if lb > maxLB {
			maxLB = lb
		}
	}
	if maxLB != 0 {
		t.Errorf("decoded block maximum is %v, want re-normalized to 0", maxLB)
	}
	for i, want := range []float64{0, -1.5, -2, -0.5} {
		if diff := math.Abs(got[i] - want); diff > 1e-3 {
			t.Errorf("belief %d: got %v, want %v +- 1e-3 after renormalization", i, got[i], want)
		}
	}
}

// TestCapsValidation pins the well-formedness rules of the capability
// field and the quantized-profile directive across frame kinds.
func TestCapsValidation(t *testing.T) {
	snap := &knowledge.Snapshot{From: 1, Seq: 3}
	bad := []struct {
		name string
		f    *Frame
	}{
		{"heartbeat caps below v4", &Frame{Kind: FrameHeartbeat, Heartbeat: snap, Caps: 3}},
		{"heartbeat caps beyond max", &Frame{Kind: FrameHeartbeat, Heartbeat: snap, Caps: MaxCaps + 1}},
		{"caps on a data frame", &Frame{Kind: FrameData, Caps: CapsQuantized,
			Data: &DataMsg{Origin: 0, Seq: 1, Root: 0, Body: []byte("x")}}},
		{"quantized heartbeat without caps", &Frame{Kind: FrameHeartbeat, Heartbeat: snap, Quant: true}},
		{"quantized delta without caps", &Frame{Kind: FrameKnowledgeDelta, Quant: true,
			Delta: &KnowledgeDelta{Snap: snap, Ver: 2}}},
		{"quantized data frame", &Frame{Kind: FrameData, Quant: true,
			Data: &DataMsg{Origin: 0, Seq: 1, Root: 0, Body: []byte("x")}}},
		{"delta caps below v4", &Frame{Kind: FrameKnowledgeDelta,
			Delta: &KnowledgeDelta{Snap: snap, Ver: 2, Caps: 2}}},
		{"leave with caps", &Frame{Kind: FrameLeave,
			Member: &Membership{Node: 1, Epoch: 2, NumProcs: 3, Departed: []topology.NodeID{1}, Caps: CapsQuantized}}},
		{"join caps beyond max", &Frame{Kind: FrameJoin,
			Member: &Membership{Node: 2, Epoch: 2, NumProcs: 3, Neighbors: []topology.NodeID{0}, Caps: 300}}},
	}
	for _, c := range bad {
		if _, err := Encode(c.f); err == nil {
			t.Errorf("%s: Encode should fail", c.name)
		}
	}
}

// TestV4DataFrameRejected pins the mixed-cluster invariant that keeps
// relays sound: data frames are encoded once and forwarded verbatim
// across peers of unknown capability, so a version-4 data frame must
// never exist — decoders drop it outright.
func TestV4DataFrameRejected(t *testing.T) {
	b, err := Encode(&Frame{Kind: FrameData, Data: &DataMsg{Origin: 0, Seq: 1, Root: 0, Body: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), b...)
	forged[1] = version4
	if _, err := Decode(forged); err == nil {
		t.Error("version-4 data frame should fail to decode")
	}
}

// TestNonCapsFramesStayLegacy pins the negotiation ladder's floor: every
// frame without a capability advert — whatever else it carries — encodes
// at wire version <= 3, byte-compatible with peers that predate v4. (The
// epoch golden tests additionally pin the exact bytes of the static
// shapes; this covers every seed shape.)
func TestNonCapsFramesStayLegacy(t *testing.T) {
	for i, f := range seedFrames(t) {
		caps := f.Caps
		switch f.Kind {
		case FrameKnowledgeDelta:
			caps = f.Delta.Caps
		case FrameJoin, FrameLeave:
			caps = f.Member.Caps
		}
		if caps != 0 {
			continue
		}
		b, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if b[1] > version3 {
			t.Errorf("seed %d (kind %d) without caps encoded at version %d", i, f.Kind, b[1])
		}
	}
}

// TestQuantizedSectionZeroAlloc extends the zero-alloc encode gate to
// the quantized profile: cutting a quantized snapshot section into a
// warm buffer, and assembling a v4 delta frame around a shared section,
// allocate nothing.
func TestQuantizedSectionZeroAlloc(t *testing.T) {
	snap := paperSnapshot(t)
	buf := make([]byte, 0, 16384)
	section, err := AppendSnapshotSectionQuantized(buf, snap)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendSnapshotSectionQuantized(buf[:0], snap); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("quantized section encode allocated %.1f times per op, want 0", allocs)
	}

	d := &KnowledgeDelta{Since: 3, Ver: 5, Ack: 9, Cadence: 2, Epoch: 4, Caps: CapsQuantized}
	fbuf := make([]byte, 0, len(section)+256)
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := AppendDeltaFrame(fbuf[:0], d, section); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("v4 delta-frame assembly allocated %.1f times per op, want 0", allocs)
	}
}
