// Package wire defines the frame encoding the live runtime puts on a
// transport: heartbeat frames carrying knowledge snapshots (Algorithm 4's
// (Λ_k, C_k) exchange), knowledge-delta frames carrying only the records
// that changed since the version the peer last acknowledged (the
// steady-state heartbeat form; see KnowledgeDelta), and data frames
// carrying a broadcast payload plus the sender's MRT and per-edge
// allocation (Algorithm 1's (m, mrt_j)).
//
// Encoding is a compact hand-rolled binary format (see binary.go): a
// 3-byte versioned header followed by varint-coded integers and raw IEEE
// 754 floats, with a fast path that ships only the interval count for
// Bayesian estimators on the standard uniform grid. The previous
// stdlib-gob codec is retained as EncodeGob/DecodeGob for benchmarks and
// size comparisons; it is not used on any live path.
//
// The allocation is keyed by child node (AllocByNode) rather than by edge
// index, so the receiver may rebuild the tree in any deterministic order
// without misaligning the counts.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// FrameKind discriminates frame payloads.
type FrameKind uint8

// Frame kinds.
const (
	FrameHeartbeat FrameKind = iota + 1
	FrameData
	FrameKnowledgeDelta
)

// KnowledgeDelta is the delta-heartbeat payload: a partial knowledge
// snapshot carrying only the records that changed since the sender-view
// version the recipient last acknowledged, plus the version bookkeeping
// that drives the ack chain. Snap.From and Snap.Seq identify the sender
// and its heartbeat sequence exactly as on a full heartbeat, so delta
// frames feed the same sequence-gap loss accounting.
//
// Since is the sender-view version the record set is relative to; 0 means
// the record set is a full snapshot (the fallback when the recipient's
// acked version is unknown or predates the sender's current incarnation).
// Ver is the sender's view version when the delta was cut — the recipient
// records it and echoes it back as Ack on its own next frame. Ack is the
// latest version of the *recipient's* view the sender has merged, closing
// the loop: each side learns what the other holds purely from the
// periodic heartbeat exchange, with no extra ack messages.
//
// Cadence declares, in heartbeat periods, the gap the sender plans until
// its next frame to this recipient (the adaptive-cadence stretch; see
// the node's cadence controller). 0 and 1 both mean one frame per period
// — the classic cadence — and encode as a version-1 frame, byte-identical
// to pre-cadence peers' wire format; Cadence > 1 rides a version-2 frame,
// and the receiver scales its expected-arrival accounting (suspicion
// timeouts and sequence-gap loss bookkeeping) by it so a stretched
// neighbor is neither falsely suspected nor over-counted as lossy. A
// sender may break the promise early (snap back on a view change), which
// is always safe: an early frame shows a smaller-than-declared gap, which
// books no loss.
type KnowledgeDelta struct {
	Snap    *knowledge.Snapshot
	Since   uint64
	Ver     uint64
	Ack     uint64
	Cadence uint64
}

// MaxCadence bounds the declared heartbeat cadence a frame may carry.
// The receiver multiplies its suspicion timeout by the declared cadence,
// so an unbounded value would let a hostile peer suppress its own failure
// detection forever; 256 periods is far beyond any sane stretch cap.
const MaxCadence = 256

// DataMsg is one reliable-broadcast data message.
type DataMsg struct {
	// Origin and Seq identify the broadcast (dedup key). Seq starts at 1;
	// the zero value is reserved so receivers can use contiguous-sequence
	// watermarks for dedup compaction.
	Origin topology.NodeID
	Seq    uint64
	// Root and Parents carry the sender's MRT; an empty Parents means the
	// message was flooded (adaptive warm-up) and receivers re-flood.
	Root    topology.NodeID
	Parents []topology.NodeID
	// AllocByNode[v] is the number of copies to push over the tree edge
	// leading to v (0 for the root and for flooded messages).
	AllocByNode []int32
	// Body is the application payload.
	Body []byte
	// Piggyback optionally carries the immediate sender's knowledge
	// snapshot (paper Section 4.1: estimates can ride on application
	// traffic, saving heartbeat bandwidth). Forwarders replace it with
	// their own snapshot so distortion accounting matches hop-by-hop
	// propagation.
	Piggyback *knowledge.Snapshot
}

// Frame is the unit put on a transport.
type Frame struct {
	Kind      FrameKind
	Heartbeat *knowledge.Snapshot
	Data      *DataMsg
	Delta     *KnowledgeDelta
}

// Encode serializes a frame in the binary wire format.
func Encode(f *Frame) ([]byte, error) {
	if err := validate(f); err != nil {
		return nil, err
	}
	return encodeBinary(f)
}

// Decode parses a frame. Malformed input returns an error, never panics.
func Decode(b []byte) (*Frame, error) {
	f, err := decodeBinary(b)
	if err != nil {
		return nil, err
	}
	if err := validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeGob serializes a frame with the legacy stdlib-gob codec. It is
// kept only as the baseline for codec benchmarks and size-regression
// tests; live nodes always speak the binary format.
func EncodeGob(f *Frame) ([]byte, error) {
	if err := validate(f); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob parses a legacy gob frame (benchmark baseline only).
func DecodeGob(b []byte) (*Frame, error) {
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := validate(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// validate enforces the kind/payload pairing in both directions, so a
// malformed peer cannot feed nil payloads into the node.
func validate(f *Frame) error {
	if f == nil {
		return errors.New("wire: nil frame")
	}
	switch f.Kind {
	case FrameHeartbeat:
		if f.Heartbeat == nil || f.Data != nil || f.Delta != nil {
			return errors.New("wire: heartbeat frame payload mismatch")
		}
	case FrameData:
		if f.Data == nil || f.Heartbeat != nil || f.Delta != nil {
			return errors.New("wire: data frame payload mismatch")
		}
		if f.Data.Seq == 0 {
			return errors.New("wire: data frame sequence must be >= 1")
		}
		if len(f.Data.Parents) > 0 && len(f.Data.AllocByNode) != len(f.Data.Parents) {
			return fmt.Errorf("wire: allocation covers %d nodes, tree has %d",
				len(f.Data.AllocByNode), len(f.Data.Parents))
		}
	case FrameKnowledgeDelta:
		if f.Delta == nil || f.Delta.Snap == nil || f.Heartbeat != nil || f.Data != nil {
			return errors.New("wire: knowledge-delta frame payload mismatch")
		}
		if f.Delta.Since > f.Delta.Ver {
			return fmt.Errorf("wire: delta base %d ahead of its version %d", f.Delta.Since, f.Delta.Ver)
		}
		if f.Delta.Cadence > MaxCadence {
			return fmt.Errorf("wire: cadence %d exceeds the %d-period bound", f.Delta.Cadence, MaxCadence)
		}
	default:
		return fmt.Errorf("wire: unknown frame kind %d", f.Kind)
	}
	return nil
}
