// Package wire defines the frame encoding the live runtime puts on a
// transport: heartbeat frames carrying knowledge snapshots (Algorithm 4's
// (Λ_k, C_k) exchange), knowledge-delta frames carrying only the records
// that changed since the version the peer last acknowledged (the
// steady-state heartbeat form; see KnowledgeDelta), and data frames
// carrying a broadcast payload plus the sender's MRT and per-edge
// allocation (Algorithm 1's (m, mrt_j)).
//
// Encoding is a compact hand-rolled binary format (see binary.go): a
// 3-byte versioned header followed by varint-coded integers and raw IEEE
// 754 floats, with a fast path that ships only the interval count for
// Bayesian estimators on the standard uniform grid. The previous
// stdlib-gob codec is retained as EncodeGob/DecodeGob for benchmarks and
// size comparisons; it is not used on any live path.
//
// The allocation is keyed by child node (AllocByNode) rather than by edge
// index, so the receiver may rebuild the tree in any deterministic order
// without misaligning the counts.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

// FrameKind discriminates frame payloads.
type FrameKind uint8

// Frame kinds. The wirekind analyzer (run by cmd/adaptivelint in CI)
// reads the annotations: each constant declares the wire versions it may
// ride, every declared kind×version pair must be witnessed by a
// committed FuzzDecode corpus seed, and every switch over a FrameKind
// must stay exhaustive — so a new kind cannot ship without fuzz coverage
// and codec/dispatch cases.
//
//adaptivelint:wirecorpus dir=testdata/fuzz/FuzzDecode magic=0xAC
const (
	FrameHeartbeat      FrameKind = iota + 1 //adaptivelint:wirekind versions=1,4
	FrameData                                //adaptivelint:wirekind versions=1,3
	FrameKnowledgeDelta                      //adaptivelint:wirekind versions=1,2,3,4
	// FrameJoin announces a membership epoch change that added a process;
	// FrameLeave one that removed a process. Both carry a Membership
	// payload and encode as wire version 3 — or 4 when the join advertises
	// the subject's capabilities. Receivers flood them so every member
	// converges on the new epoch; the epoch number itself dedups the
	// flood.
	FrameJoin  //adaptivelint:wirekind versions=3,4
	FrameLeave //adaptivelint:wirekind versions=3
)

// Membership is the payload of FrameJoin and FrameLeave: a complete
// description of the process set as of Epoch, not just the delta — so a
// node that missed intermediate epochs (lossy links, downtime) catches up
// from any single announcement.
//
// Node is the subject of the change (the joiner or the leaver). NumProcs
// is the ID-space size |Π| after the change (IDs are dense and never
// reused; bounded by MaxProcs so a forged frame cannot drive unbounded
// view growth). Departed lists every tombstoned process as of Epoch, the
// leaver included. Neighbors, on join frames, lists the joiner's direct
// links so receivers that are named can learn their new link before the
// first heartbeat crosses it; it is empty on leave frames.
//
// Membership frames carry the same trust as every other frame — the
// protocol has no authentication layer, so a peer that can inject frames
// can already forge estimates and data; Epoch in particular is adopted
// as announced.
type Membership struct {
	Node      topology.NodeID
	Epoch     uint64
	NumProcs  int
	Departed  []topology.NodeID
	Neighbors []topology.NodeID
	// Caps advertises the subject's highest supported wire version (the
	// v4 capability negotiation; see CapsQuantized). 0 omits it and the
	// frame encodes as version 3, byte-identical to pre-caps peers. Only
	// join frames may carry it — a leaver has nothing to negotiate.
	Caps uint64
}

// KnowledgeDelta is the delta-heartbeat payload: a partial knowledge
// snapshot carrying only the records that changed since the sender-view
// version the recipient last acknowledged, plus the version bookkeeping
// that drives the ack chain. Snap.From and Snap.Seq identify the sender
// and its heartbeat sequence exactly as on a full heartbeat, so delta
// frames feed the same sequence-gap loss accounting.
//
// Since is the sender-view version the record set is relative to; 0 means
// the record set is a full snapshot (the fallback when the recipient's
// acked version is unknown or predates the sender's current incarnation).
// Ver is the sender's view version when the delta was cut — the recipient
// records it and echoes it back as Ack on its own next frame. Ack is the
// latest version of the *recipient's* view the sender has merged, closing
// the loop: each side learns what the other holds purely from the
// periodic heartbeat exchange, with no extra ack messages.
//
// Cadence declares, in heartbeat periods, the gap the sender plans until
// its next frame to this recipient (the adaptive-cadence stretch; see
// the node's cadence controller). 0 and 1 both mean one frame per period
// — the classic cadence — and encode as a version-1 frame, byte-identical
// to pre-cadence peers' wire format; Cadence > 1 rides a version-2 frame,
// and the receiver scales its expected-arrival accounting (suspicion
// timeouts and sequence-gap loss bookkeeping) by it so a stretched
// neighbor is neither falsely suspected nor over-counted as lossy. A
// sender may break the promise early (snap back on a view change), which
// is always safe: an early frame shows a smaller-than-declared gap, which
// books no loss.
// Epoch is the sender's membership epoch (see Membership). 0 — the
// static-cluster case — encodes exactly as before epochs existed (wire
// version 1 or 2), so pre-epoch peers interoperate untouched; a positive
// epoch rides a version-3 frame and lets receivers fence frames from
// other membership views.
type KnowledgeDelta struct {
	Snap    *knowledge.Snapshot
	Since   uint64
	Ver     uint64
	Ack     uint64
	Cadence uint64
	Epoch   uint64
	// Caps advertises the sender's highest supported wire version. 0 —
	// the pre-negotiation case — encodes exactly as before capabilities
	// existed (wire version ≤ 3); a nonzero value rides a version-4 frame
	// and unlocks the quantized belief profile for the record section.
	// The node sets it only toward peers that have advertised v4
	// themselves, or as a periodic capability hello toward peers whose
	// capabilities are still unknown.
	Caps uint64
}

// MaxCadence bounds the declared heartbeat cadence a frame may carry.
// The receiver multiplies its suspicion timeout by the declared cadence,
// so an unbounded value would let a hostile peer suppress its own failure
// detection forever; 256 periods is far beyond any sane stretch cap.
const MaxCadence = 256

// CapsQuantized is the Caps value a node advertising wire v4 (the
// quantized belief profile) puts on its frames: capability adverts carry
// the sender's highest supported wire version.
const CapsQuantized = 4

// MaxCaps bounds the capability value a frame may carry. Caps is a
// version number, not a bitmask; 255 leaves far more headroom than the
// format will ever use while keeping hostile values trivially rejectable.
const MaxCaps = 255

// MaxProcs bounds the ID-space size a membership announcement may
// declare. Receivers grow their views to NumProcs — one estimator record
// per process — so an unbounded value would let one forged ~20-byte
// frame drive a multi-gigabyte allocation; 65536 processes is far beyond
// any deployment this runtime targets while keeping the worst-case grow
// in the tens of megabytes.
const MaxProcs = 1 << 16

// DataMsg is one reliable-broadcast data message.
type DataMsg struct {
	// Origin and Seq identify the broadcast (dedup key). Seq starts at 1;
	// the zero value is reserved so receivers can use contiguous-sequence
	// watermarks for dedup compaction.
	Origin topology.NodeID
	Seq    uint64
	// Root and Parents carry the sender's MRT; an empty Parents means the
	// message was flooded (adaptive warm-up) and receivers re-flood.
	Root    topology.NodeID
	Parents []topology.NodeID
	// AllocByNode[v] is the number of copies to push over the tree edge
	// leading to v (0 for the root and for flooded messages).
	AllocByNode []int32
	// Body is the application payload.
	Body []byte
	// Piggyback optionally carries the immediate sender's knowledge
	// snapshot (paper Section 4.1: estimates can ride on application
	// traffic, saving heartbeat bandwidth). Forwarders replace it with
	// their own snapshot so distortion accounting matches hop-by-hop
	// propagation.
	Piggyback *knowledge.Snapshot
	// Epoch is the sender's membership epoch; 0 (static cluster) encodes
	// as a version-1 frame, byte-identical to pre-epoch peers.
	Epoch uint64
}

// Frame is the unit put on a transport.
type Frame struct {
	Kind      FrameKind
	Heartbeat *knowledge.Snapshot
	Data      *DataMsg
	Delta     *KnowledgeDelta
	// Member carries the FrameJoin / FrameLeave payload.
	Member *Membership
	// Caps advertises the sender's highest supported wire version on a
	// full heartbeat frame (delta and join frames carry their own Caps
	// field on their payloads). 0 omits it; a nonzero value rides a
	// version-4 frame.
	Caps uint64
	// Quant selects the v4 quantized belief profile for the frame's
	// snapshot payload. It is an encoder directive, not itself
	// serialized: decoders materialize dequantized float states and leave
	// it false. Effective only when the frame encodes as version 4 (a
	// nonzero Caps); setting it on a non-v4 frame is a validation error
	// so a profile mismatch cannot slip out silently.
	Quant bool
}

// Encode serializes a frame in the binary wire format.
func Encode(f *Frame) ([]byte, error) {
	if err := validate(f); err != nil {
		return nil, err
	}
	return encodeBinary(f)
}

// Decode parses a frame. Malformed input returns an error, never panics.
// Variable-length byte fields (the data body) are copied out of b, so the
// caller may reuse the buffer immediately.
func Decode(b []byte) (*Frame, error) {
	return decode(b, false)
}

// DecodeBorrow is Decode without the body copy: the returned frame's
// DataMsg.Body aliases b. It removes the last per-frame allocation on
// receive paths whose transport hands the handler an exclusively owned
// buffer (the in-process Fabric); transports that reuse read buffers
// (TCP) must keep using Decode. The caller must not recycle b while the
// frame — or anything the body was handed to, like an application
// Delivery — is live.
func DecodeBorrow(b []byte) (*Frame, error) {
	return decode(b, true)
}

func decode(b []byte, borrow bool) (*Frame, error) {
	f, err := decodeBinary(b, borrow)
	if err != nil {
		return nil, err
	}
	if err := validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeGob serializes a frame with the legacy stdlib-gob codec. It is
// kept only as the baseline for codec benchmarks and size-regression
// tests; live nodes always speak the binary format.
func EncodeGob(f *Frame) ([]byte, error) {
	if err := validate(f); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob parses a legacy gob frame (benchmark baseline only).
func DecodeGob(b []byte) (*Frame, error) {
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := validate(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// validate enforces the kind/payload pairing in both directions, so a
// malformed peer cannot feed nil payloads into the node.
func validate(f *Frame) error {
	if f == nil {
		return errors.New("wire: nil frame")
	}
	if f.Caps != 0 {
		if f.Kind != FrameHeartbeat {
			return errors.New("wire: frame-level caps on a non-heartbeat frame")
		}
		if f.Caps < CapsQuantized || f.Caps > MaxCaps {
			return fmt.Errorf("wire: caps %d outside [%d,%d]", f.Caps, CapsQuantized, MaxCaps)
		}
	}
	if f.Quant {
		switch f.Kind {
		case FrameHeartbeat:
			if f.Caps == 0 {
				return errors.New("wire: quantized heartbeat without a capability advert")
			}
		case FrameKnowledgeDelta:
			if f.Delta == nil || f.Delta.Caps == 0 {
				return errors.New("wire: quantized delta without a capability advert")
			}
		case FrameData, FrameJoin, FrameLeave:
			return errors.New("wire: quantized profile on a frame kind without estimates")
		default:
			return errors.New("wire: quantized profile on a frame kind without estimates")
		}
	}
	switch f.Kind {
	case FrameHeartbeat:
		if f.Heartbeat == nil || f.Data != nil || f.Delta != nil || f.Member != nil {
			return errors.New("wire: heartbeat frame payload mismatch")
		}
	case FrameData:
		if f.Data == nil || f.Heartbeat != nil || f.Delta != nil || f.Member != nil {
			return errors.New("wire: data frame payload mismatch")
		}
		if f.Data.Seq == 0 {
			return errors.New("wire: data frame sequence must be >= 1")
		}
		if len(f.Data.Parents) > 0 && len(f.Data.AllocByNode) != len(f.Data.Parents) {
			return fmt.Errorf("wire: allocation covers %d nodes, tree has %d",
				len(f.Data.AllocByNode), len(f.Data.Parents))
		}
	case FrameKnowledgeDelta:
		if f.Delta == nil || f.Delta.Snap == nil || f.Heartbeat != nil || f.Data != nil || f.Member != nil {
			return errors.New("wire: knowledge-delta frame payload mismatch")
		}
		if f.Delta.Since > f.Delta.Ver {
			return fmt.Errorf("wire: delta base %d ahead of its version %d", f.Delta.Since, f.Delta.Ver)
		}
		if f.Delta.Cadence > MaxCadence {
			return fmt.Errorf("wire: cadence %d exceeds the %d-period bound", f.Delta.Cadence, MaxCadence)
		}
		if c := f.Delta.Caps; c != 0 && (c < CapsQuantized || c > MaxCaps) {
			return fmt.Errorf("wire: caps %d outside [%d,%d]", c, CapsQuantized, MaxCaps)
		}
	case FrameJoin, FrameLeave:
		m := f.Member
		if m == nil || f.Heartbeat != nil || f.Data != nil || f.Delta != nil {
			return errors.New("wire: membership frame payload mismatch")
		}
		if m.Epoch == 0 {
			return errors.New("wire: membership frame at epoch 0")
		}
		if m.NumProcs > MaxProcs {
			return fmt.Errorf("wire: membership declares %d processes, bound is %d", m.NumProcs, MaxProcs)
		}
		if m.Node < 0 || int(m.Node) >= m.NumProcs {
			return fmt.Errorf("wire: membership subject %d outside [0,%d)", m.Node, m.NumProcs)
		}
		for _, d := range m.Departed {
			if d < 0 || int(d) >= m.NumProcs {
				return fmt.Errorf("wire: departed process %d outside [0,%d)", d, m.NumProcs)
			}
			if f.Kind == FrameJoin && d == m.Node {
				return errors.New("wire: join frame tombstones its own subject")
			}
		}
		if f.Kind == FrameLeave && len(m.Neighbors) != 0 {
			return errors.New("wire: leave frame carries joiner links")
		}
		if f.Kind == FrameLeave && m.Caps != 0 {
			return errors.New("wire: leave frame carries a capability advert")
		}
		if c := m.Caps; c != 0 && (c < CapsQuantized || c > MaxCaps) {
			return fmt.Errorf("wire: caps %d outside [%d,%d]", c, CapsQuantized, MaxCaps)
		}
		for _, nb := range m.Neighbors {
			if nb < 0 || int(nb) >= m.NumProcs || nb == m.Node {
				return fmt.Errorf("wire: joiner link to invalid process %d", nb)
			}
		}
	default:
		return fmt.Errorf("wire: unknown frame kind %d", f.Kind)
	}
	return nil
}
