package wire

import (
	"bytes"
	"testing"

	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/topology"
)

func heartbeatSnapshot(t *testing.T) *knowledge.Snapshot {
	t.Helper()
	v, err := knowledge.NewView(1, 4, []topology.NodeID{0, 2}, nil, knowledge.Params{Intervals: 10})
	if err != nil {
		t.Fatal(err)
	}
	v.BeginPeriod()
	return v.Snapshot()
}

func TestHeartbeatRoundTrip(t *testing.T) {
	snap := heartbeatSnapshot(t)
	b, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snap})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameHeartbeat || f.Heartbeat == nil {
		t.Fatal("frame shape lost")
	}
	if f.Heartbeat.From != 1 || f.Heartbeat.Seq != 1 {
		t.Errorf("header lost: %+v", f.Heartbeat)
	}
	if len(f.Heartbeat.Procs) != len(snap.Procs) || len(f.Heartbeat.Links) != len(snap.Links) {
		t.Errorf("payload lost: %d procs %d links", len(f.Heartbeat.Procs), len(f.Heartbeat.Links))
	}
	// The decoded snapshot merges cleanly into another view.
	other, err := knowledge.NewView(0, 4, []topology.NodeID{1}, nil, knowledge.Params{Intervals: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.MergeSnapshot(f.Heartbeat); err != nil {
		t.Fatal(err)
	}
	if _, d := other.CrashEstimate(1); d != 1 {
		t.Errorf("merged distortion = %d, want 1", d)
	}
}

func TestDataRoundTrip(t *testing.T) {
	msg := &DataMsg{
		Origin:      2,
		Seq:         7,
		Root:        2,
		Parents:     []topology.NodeID{2, 0, topology.None},
		AllocByNode: []int32{3, 1, 0},
		Body:        []byte("payload"),
	}
	b, err := Encode(&Frame{Kind: FrameData, Data: msg})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Data
	if got.Origin != 2 || got.Seq != 7 || got.Root != 2 || string(got.Body) != "payload" {
		t.Errorf("data lost: %+v", got)
	}
	if len(got.Parents) != 3 || got.Parents[2] != topology.None {
		t.Errorf("parents lost: %v", got.Parents)
	}
	if len(got.AllocByNode) != 3 || got.AllocByNode[0] != 3 {
		t.Errorf("alloc lost: %v", got.AllocByNode)
	}
}

func TestFloodedDataHasNoTree(t *testing.T) {
	msg := &DataMsg{Origin: 0, Seq: 1, Root: 0, Body: []byte("x")}
	b, err := Encode(&Frame{Kind: FrameData, Data: msg})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data.Parents) != 0 {
		t.Errorf("flooded message grew a tree: %v", f.Data.Parents)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name  string
		frame *Frame
	}{
		{"nil", nil},
		{"unknown kind", &Frame{Kind: 99}},
		{"heartbeat without payload", &Frame{Kind: FrameHeartbeat}},
		{"heartbeat with data", &Frame{Kind: FrameHeartbeat, Heartbeat: &knowledge.Snapshot{}, Data: &DataMsg{}}},
		{"data without payload", &Frame{Kind: FrameData}},
		{"data with heartbeat", &Frame{Kind: FrameData, Data: &DataMsg{}, Heartbeat: &knowledge.Snapshot{}}},
		{"alloc mismatch", &Frame{Kind: FrameData, Data: &DataMsg{
			Parents:     []topology.NodeID{topology.None, 0},
			AllocByNode: []int32{0},
		}}},
	}
	for _, c := range cases {
		if _, err := Encode(c.frame); err == nil {
			t.Errorf("%s: Encode should fail", c.name)
		}
	}
	if _, err := Decode([]byte("not a frame")); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Encode(&Frame{Kind: FrameData, Data: &DataMsg{Origin: 1}}); err == nil {
		t.Error("data frame with reserved sequence 0 should fail to encode")
	}
}

// TestDecodeRejectsTrailingBytes pins the framing invariant that a frame
// consumes its buffer exactly (length-prefixed transports deliver exact
// frames; trailing garbage means corruption).
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := Encode(&Frame{Kind: FrameData, Data: &DataMsg{Origin: 0, Seq: 1, Root: 0, Body: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(b, 0x00)); err == nil {
		t.Error("trailing byte should fail to decode")
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("truncation at %d should fail to decode", cut)
		}
	}
}

// TestRefinedGridRoundTrip covers the slow path: estimators whose grid
// was re-gridded by AutoRefine carry explicit (non-uniform) midpoints.
func TestRefinedGridRoundTrip(t *testing.T) {
	v, err := knowledge.NewView(0, 3, []topology.NodeID{1}, nil, knowledge.Params{
		Intervals: 10, AutoRefine: true, RefineMinObs: 4, RefineMass: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Enough one-sided periods for the self-estimate to concentrate and
	// refine (candidacy is checked every 16 periods), but short of the
	// next check, where sustained successes would hit the edge-stuck
	// fallback and re-grid back to uniform.
	for i := 0; i < 20; i++ {
		v.BeginPeriod()
	}
	snap := v.Snapshot()
	refined := false
	for _, pr := range snap.Procs {
		if !pr.Est.HasUniformMids() {
			refined = true
		}
	}
	if !refined {
		t.Fatal("fixture never produced a refined (non-uniform) grid")
	}
	b, err := Encode(&Frame{Kind: FrameHeartbeat, Heartbeat: snap})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(&Frame{Kind: FrameHeartbeat, Heartbeat: snap}, f) {
		t.Fatal("refined snapshot did not round-trip")
	}
}

// TestGobCompat keeps the legacy codec alive for benchmarks: both codecs
// must accept the same frames, and the binary encoding must be strictly
// smaller for both frame kinds (the size win is an acceptance criterion
// of the codec change).
func TestGobCompat(t *testing.T) {
	for _, frame := range seedFrames(t) {
		gobBytes, err := EncodeGob(frame)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeGob(gobBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !framesEqual(frame, back) {
			t.Fatalf("gob round-trip drift for kind %d", frame.Kind)
		}
		binBytes, err := Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if len(binBytes) >= len(gobBytes) {
			t.Errorf("kind %d: binary frame is %dB, gob is %dB — binary must be smaller",
				frame.Kind, len(binBytes), len(gobBytes))
		}
		t.Logf("kind %d: binary %dB vs gob %dB (%.0f%% smaller)",
			frame.Kind, len(binBytes), len(gobBytes),
			100*(1-float64(len(binBytes))/float64(len(gobBytes))))
	}
}

// TestDeltaValidate pins the well-formedness rules of the knowledge-delta
// frame kind in both codec directions.
func TestDeltaValidate(t *testing.T) {
	snap := &knowledge.Snapshot{From: 1, Seq: 3}
	good := &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Since: 2, Ver: 5, Ack: 7}}
	b, err := Encode(good)
	if err != nil {
		t.Fatalf("well-formed delta rejected: %v", err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Delta.Since != 2 || f.Delta.Ver != 5 || f.Delta.Ack != 7 {
		t.Fatalf("delta bookkeeping drifted: %+v", f.Delta)
	}

	bad := []*Frame{
		{Kind: FrameKnowledgeDelta},                                                       // no payload
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{}},                             // nil record set
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Since: 6, Ver: 5}}, // base ahead of version
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap}, Heartbeat: snap},  // payload mismatch
		{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Ver: 2,
			Cadence: MaxCadence + 1}}, // cadence beyond the suspicion-scaling bound
	}
	for i, f := range bad {
		if _, err := Encode(f); err == nil {
			t.Errorf("malformed delta %d accepted", i)
		}
	}
}

// TestCadenceWireVersioning pins the adaptive-cadence wire contract: an
// unstretched delta (Cadence absent, 0 or 1) must stay a byte-identical
// version-1 frame — what pre-cadence peers emit and decode — while a
// stretched delta rides a version-2 frame that round-trips its cadence.
func TestCadenceWireVersioning(t *testing.T) {
	snap := &knowledge.Snapshot{From: 1, Seq: 3}
	base := &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Since: 2, Ver: 5, Ack: 7}}
	v1, err := Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	if v1[1] != 1 {
		t.Fatalf("unstretched delta encoded as wire version %d, want 1", v1[1])
	}
	one := &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Since: 2, Ver: 5, Ack: 7, Cadence: 1}}
	if b, err := Encode(one); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(b, v1) {
		t.Errorf("cadence-1 delta not byte-identical to the pre-cadence layout:\n%x\n%x", b, v1)
	}

	stretched := &Frame{Kind: FrameKnowledgeDelta, Delta: &KnowledgeDelta{Snap: snap, Since: 2, Ver: 5, Ack: 7, Cadence: 8}}
	v2, err := Encode(stretched)
	if err != nil {
		t.Fatal(err)
	}
	if v2[1] != 2 {
		t.Fatalf("stretched delta encoded as wire version %d, want 2", v2[1])
	}
	got, err := Decode(v2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta.Cadence != 8 || got.Delta.Since != 2 || got.Delta.Ver != 5 || got.Delta.Ack != 7 {
		t.Fatalf("stretched delta drifted: %+v", got.Delta)
	}
	// And the v1 frame decodes with the implied classic cadence.
	got1, err := Decode(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Delta.Cadence != 1 {
		t.Errorf("v1 delta decoded with cadence %d, want implied 1", got1.Delta.Cadence)
	}
}
