package adaptivecast_test

import (
	"testing"
	"time"

	"adaptivecast"
)

func tickCluster(c *adaptivecast.Cluster, periods int) {
	for p := 0; p < periods; p++ {
		c.Tick()
		time.Sleep(2 * time.Millisecond)
	}
}

func drainCluster(c *adaptivecast.Cluster, id adaptivecast.NodeID) []adaptivecast.Delivery {
	var out []adaptivecast.Delivery
	for {
		select {
		case d := <-c.Deliveries(id):
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestClusterAddNodeDeliversAndForwards is the acceptance-criteria test:
// a node added to a running cluster via AddNode delivers broadcasts
// within 3 heartbeat periods — and, placed as the only bridge to a second
// joiner, forwards them too.
func TestClusterAddNodeDeliversAndForwards(t *testing.T) {
	line, err := adaptivecast.Line(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptivecast.NewCluster(adaptivecast.ClusterConfig{Topology: line})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tickCluster(c, 20) // converge the original pair

	// First joiner hangs off node 1; second joiner hangs off the first,
	// making the first joiner the only route to it.
	first, err := c.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	tickCluster(c, 3)
	second, err := c.AddNode(first)
	if err != nil {
		t.Fatal(err)
	}
	tickCluster(c, 3)

	if got := c.Epoch(); got != 2 {
		t.Fatalf("cluster epoch = %d after two joins, want 2", got)
	}
	for id := adaptivecast.NodeID(0); int(id) < c.NumNodes(); id++ {
		if got := c.Node(id).Epoch(); got != 2 {
			t.Errorf("node %d at epoch %d, want 2", id, got)
		}
		drainCluster(c, id)
	}

	// Within 3 periods of the last join, a broadcast from an original
	// member must reach both joiners — the second only via the first.
	forwardedBefore := c.Stats(first).DataSent
	if _, _, err := c.Broadcast(0, []byte("grown")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	for _, id := range []adaptivecast.NodeID{1, first, second} {
		if ds := drainCluster(c, id); len(ds) == 0 {
			t.Errorf("node %d missed the post-join broadcast", id)
		}
	}
	if got := c.Stats(first).DataSent; got <= forwardedBefore {
		t.Errorf("joiner %d forwarded nothing (DataSent %d -> %d)", first, forwardedBefore, got)
	}
}

// TestClusterRemoveNode covers the leave half: the departed member's
// records vanish from the survivors' knowledge, the epoch advances, and
// broadcasts keep spanning the remaining membership.
func TestClusterRemoveNode(t *testing.T) {
	ring, err := adaptivecast.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptivecast.NewCluster(adaptivecast.ClusterConfig{Topology: ring})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tickCluster(c, 30)
	for id := adaptivecast.NodeID(0); id < 5; id++ {
		if got := len(c.KnownLinks(id)); got != 5 {
			t.Fatalf("node %d knows %d links before removal, want 5", id, got)
		}
	}

	const leaver = adaptivecast.NodeID(2)
	if err := c.RemoveNode(leaver); err != nil {
		t.Fatal(err)
	}
	tickCluster(c, 3)

	if got := c.Epoch(); got != 1 {
		t.Fatalf("cluster epoch = %d after removal, want 1", got)
	}
	if c.Topology().Active(leaver) {
		t.Error("topology still lists the leaver as active")
	}
	survivors := []adaptivecast.NodeID{0, 1, 3, 4}
	for _, id := range survivors {
		if got := c.Node(id).Epoch(); got != 1 {
			t.Errorf("node %d at epoch %d after removal, want 1", id, got)
		}
		for _, l := range c.KnownLinks(id) {
			if l.A == leaver || l.B == leaver {
				t.Errorf("node %d still knows link %v of the departed member", id, l)
			}
		}
		drainCluster(c, id)
	}

	if _, _, err := c.Broadcast(0, []byte("post-removal")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	for _, id := range survivors[1:] {
		if ds := drainCluster(c, id); len(ds) == 0 {
			t.Errorf("survivor %d missed the post-removal broadcast", id)
		}
	}

	// The removed slot stays addressable but inert, and re-removal fails.
	if err := c.RemoveNode(leaver); err == nil {
		t.Error("second removal of the same node should fail")
	}
}

// TestClusterLeaveCannotEraseInFlightJoin pins the ledger-built leave
// announcement: RemoveNode called immediately after AddNode — before any
// member has processed the join flood — must not strand the joiner. The
// leave frame's ID-space size comes from the cluster's graph (which
// already includes the joiner), so members that adopt the higher leave
// epoch first still grow their views over the joiner's slot, and the
// joiner folds in through the stale-epoch repair loop.
func TestClusterLeaveCannotEraseInFlightJoin(t *testing.T) {
	ring, err := adaptivecast.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptivecast.NewCluster(adaptivecast.ClusterConfig{Topology: ring})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tickCluster(c, 15)

	// Join and leave back to back, no ticks in between: the join flood is
	// still in the fabric queues when the leave is announced.
	joiner, err := c.AddNode(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	tickCluster(c, 6)

	for _, id := range []adaptivecast.NodeID{0, 1, 2, joiner} {
		if got := c.Node(id).Epoch(); got != 2 {
			t.Errorf("node %d at epoch %d, want 2", id, got)
		}
		drainCluster(c, id)
	}
	// The joiner must be a live member: broadcasts reach it and from it.
	if _, _, err := c.Broadcast(1, []byte("after-overtake")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if ds := drainCluster(c, joiner); len(ds) == 0 {
		t.Error("joiner missed the broadcast after an overtaking leave")
	}
	if _, _, err := c.Broadcast(joiner, []byte("from-joiner")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	for _, id := range []adaptivecast.NodeID{0, 1, 2} {
		if ds := drainCluster(c, id); len(ds) == 0 {
			t.Errorf("node %d missed the joiner's broadcast", id)
		}
	}
}

// TestClusterRemoveNodeRejectsDisconnection pins the safety check: a
// removal that would split the remaining members is refused.
func TestClusterRemoveNodeRejectsDisconnection(t *testing.T) {
	line, err := adaptivecast.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptivecast.NewCluster(adaptivecast.ClusterConfig{Topology: line})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.RemoveNode(1); err == nil {
		t.Fatal("removing the middle of a line should be rejected")
	}
	if got := c.Epoch(); got != 0 {
		t.Errorf("rejected removal advanced the epoch to %d", got)
	}
}

// TestClusterAddNodeValidation covers the argument checks.
func TestClusterAddNodeValidation(t *testing.T) {
	c := testCluster(t, 3)
	if _, err := c.AddNode(); err == nil {
		t.Error("joiner with no neighbors should fail")
	}
	if _, err := c.AddNode(7); err == nil {
		t.Error("joiner linked to unknown member should fail")
	}
	if err := c.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(1); err == nil {
		t.Error("joiner linked to departed member should fail")
	}
}
