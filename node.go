package adaptivecast

import (
	"context"
	"sync"
	"time"

	"adaptivecast/internal/node"
)

// Receipt acknowledges an initiated broadcast.
type Receipt struct {
	// Origin is the broadcasting node.
	Origin NodeID
	// Seq is the originator-local sequence number of the broadcast.
	Seq uint64
	// Planned is the planned data-message count Σ m[j] for the broadcast's
	// Maximum Reliability Tree, or the flood fan-out while the view cannot
	// produce a spanning tree yet.
	Planned int
}

// Node is one live protocol process bound to a Transport — the core of
// the public API. Construct it with NewNode over any transport (an
// in-process Fabric endpoint, a TCP transport, or a custom
// implementation), start the heartbeat activity with Start (or pace it
// deterministically with Tick), and consume deliveries either through
// Subscribe handlers or the raw Deliveries channel. Use one consumption
// style per node: the first Subscribe starts a dispatcher that drains the
// channel.
type Node struct {
	inner *node.Node

	mu          sync.Mutex
	subs        []subscription
	nextSub     int
	dispatching bool
	closed      bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// subscription is one registered handler; the slice keeps registration
// order and stays proportional to the active subscribers.
type subscription struct {
	id int
	fn func(Delivery)
}

// NewNode builds a node over the given transport. The node's identity is
// the transport's: tr.Local() names this process among numProcs, and
// neighbors lists its directly connected peers. Capabilities beyond the
// defaults — reliability target, heartbeat period, stable storage,
// exactly-once logging, piggybacking, instrumentation — are enabled with
// functional options.
//
// The node is built stopped: call Start for real-time heartbeats or Tick
// to pace it deterministically, and Close when done. If stable storage
// holds a previous clock mark, the downtime since that mark is booked as
// missed ticks before the node starts.
func NewNode(tr Transport, numProcs int, neighbors []NodeID, opts ...Option) (*Node, error) {
	cfg := nodeConfig{inner: node.Config{
		NumProcs:  numProcs,
		Neighbors: neighbors,
	}}
	if tr != nil {
		cfg.inner.ID = tr.Local()
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.adaptiveCadence > 0 {
		// Convert the cap to whole heartbeat periods against the final δ
		// (options apply in caller order, so δ is only known now).
		delta := cfg.inner.HeartbeatEvery
		if delta == 0 {
			delta = time.Second // the runtime default
		}
		cfg.inner.AdaptiveCadenceMax = int(cfg.adaptiveCadence / delta)
	}
	n := &Node{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	cfg.inner.Hooks = n.hooks(cfg.obs)
	inner, err := node.New(cfg.inner, tr)
	if err != nil {
		return nil, err
	}
	n.inner = inner
	return n, nil
}

// hooks bridges the public Observer onto the runtime's instrumentation
// points.
func (n *Node) hooks(obs Observer) node.Hooks {
	return node.Hooks{
		OnDeliver: obs.OnDeliver,
		OnDrop:    obs.OnDrop,
		OnTreeRebuild: func(seq uint64, edges, planned int) {
			if obs.OnTreeRebuild != nil {
				obs.OnTreeRebuild(TreeRebuild{Seq: seq, Edges: edges, Planned: planned})
			}
		},
	}
}

// ID returns the node's process identity (its transport's Local).
func (n *Node) ID() NodeID { return n.inner.ID() }

// Start launches the heartbeat activity on real timers. It is idempotent;
// deterministic drivers use Tick instead.
func (n *Node) Start() { n.inner.Start() }

// Tick advances the node one heartbeat period synchronously — the
// deterministic alternative to Start for tests and paced demos.
func (n *Node) Tick() { n.inner.Tick() }

// Close stops the heartbeat activity and the subscription dispatcher and
// waits for both to exit. The runtime is stopped before the dispatcher,
// so every delivery accepted before Close reaches the subscribers. The
// transport is not closed (the caller owns it). Close is idempotent and
// safe on nodes that were never started.
func (n *Node) Close() error {
	n.stopOnce.Do(func() {
		// Stop the producer first: after this no new deliveries are
		// queued, so the dispatcher's shutdown drain is complete.
		n.inner.Stop()
		n.mu.Lock()
		n.closed = true
		dispatching := n.dispatching
		n.mu.Unlock()
		close(n.stop)
		if dispatching {
			<-n.done
		}
	})
	return nil
}

// Subscribe registers a handler for every subsequent delivery and returns
// its cancel function. Handlers run on one dispatch goroutine in delivery
// order, shared by all subscribers; a handler that lags by more than the
// delivery buffer causes further deliveries to be dropped and counted
// (see WithDeliveryBuffer). Handlers must not block indefinitely.
//
// The first Subscribe switches the node to handler-based consumption: a
// dispatcher starts draining the Deliveries channel. Do not mix Subscribe
// with direct reads of that channel.
func (n *Node) Subscribe(fn func(Delivery)) (cancel func()) {
	n.mu.Lock()
	id := n.nextSub
	n.nextSub++
	n.subs = append(n.subs, subscription{id: id, fn: fn})
	// The dispatcher starts on the first subscription — and never after
	// Close, so no handler runs once Close has returned.
	start := !n.dispatching && !n.closed
	if start {
		n.dispatching = true
	}
	n.mu.Unlock()
	if start {
		go n.dispatchLoop()
	}
	return func() {
		n.mu.Lock()
		for i, s := range n.subs {
			if s.id == id {
				n.subs = append(n.subs[:i], n.subs[i+1:]...)
				break
			}
		}
		n.mu.Unlock()
	}
}

// dispatchLoop fans deliveries out to the subscribers, in order.
func (n *Node) dispatchLoop() {
	defer close(n.done)
	ch := n.inner.Deliveries()
	for {
		select {
		case d := <-ch:
			n.dispatch(d)
		case <-n.stop:
			// Drain what was already queued so no accepted delivery is
			// silently lost on shutdown.
			for {
				select {
				case d := <-ch:
					n.dispatch(d)
				default:
					return
				}
			}
		}
	}
}

// dispatch hands one delivery to every current subscriber, in
// registration order.
func (n *Node) dispatch(d Delivery) {
	n.mu.Lock()
	fns := make([]func(Delivery), len(n.subs))
	for i, s := range n.subs {
		fns[i] = s.fn
	}
	n.mu.Unlock()
	for _, fn := range fns {
		fn(d)
	}
}

// Deliveries returns the raw delivery channel, for channel-style
// consumers (select loops, pipelines). Do not mix with Subscribe: after
// the first Subscribe the dispatcher owns this channel.
func (n *Node) Deliveries() <-chan Delivery { return n.inner.Deliveries() }

// Broadcast reliably broadcasts body (Algorithm 1): the message rides the
// node's current Maximum Reliability Tree with per-edge retransmission
// counts meeting the reliability target K, or is flooded to the neighbors
// while the view cannot produce a spanning tree yet.
//
// A non-nil error can accompany a valid Receipt: once the broadcast is
// initiated (sequence number consumed, local delivery queued), a
// transport failure reports the receipt of the half-sent broadcast so
// callers can dedup instead of retrying blind. Receipt.Seq == 0 means
// nothing was initiated.
func (n *Node) Broadcast(body []byte) (Receipt, error) {
	seq, planned, err := n.inner.Broadcast(body)
	if seq == 0 {
		return Receipt{}, err
	}
	return Receipt{Origin: n.ID(), Seq: seq, Planned: planned}, err
}

// BroadcastCtx is Broadcast bounded by a context: a context already
// cancelled when the call is made fails fast without initiating
// anything, and a cancellation while the broadcast is being planned
// returns ctx's error immediately. The broadcast itself, once initiated,
// is not recalled — the protocol has no un-send — so a late cancellation
// abandons only the wait for the receipt, and the message may still be
// delivered cluster-wide; callers that retry on ctx.Err must tolerate
// the duplicate.
func (n *Node) BroadcastCtx(ctx context.Context, body []byte) (Receipt, error) {
	if err := ctx.Err(); err != nil {
		return Receipt{}, err
	}
	type result struct {
		r   Receipt
		err error
	}
	ch := make(chan result, 1)
	go func() {
		r, err := n.Broadcast(body)
		ch <- result{r, err}
	}()
	select {
	case res := <-ch:
		return res.r, res.err
	case <-ctx.Done():
		return Receipt{}, ctx.Err()
	}
}

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() NodeStats { return n.inner.Stats() }

// WaitSendIdle blocks until the lane scheduler (on by default; see
// WithLaneScheduler) has flushed every queued outbound frame, or the
// timeout elapses; it reports whether idle was reached. With the
// scheduler disabled, sends are synchronous and it returns true
// immediately. Benchmarks and shutdown sequences use it to distinguish
// "handed to the transport" from "queued".
func (n *Node) WaitSendIdle(timeout time.Duration) bool { return n.inner.WaitSendIdle(timeout) }

// Epoch returns the membership epoch the node currently operates in: 0
// in a static cluster, and the epoch of the last applied membership
// change in a dynamic one. Frames from older epochs are fenced off and
// counted in NodeStats.StaleEpochFrames.
func (n *Node) Epoch() uint64 { return n.inner.Epoch() }

// Neighbors returns the node's current neighbor roster (a shared
// snapshot; do not modify). The roster changes as membership
// announcements add or remove adjacent processes.
func (n *Node) Neighbors() []NodeID { return n.inner.Neighbors() }

// AnnounceJoin floods this node's join announcement to its neighbors.
// Call it once on a freshly constructed joiner — a node built with
// WithEpoch (and WithDeparted when the cluster has tombstones) whose
// neighbor list names its links into the running cluster. Receiving
// members adopt the new epoch, learn their new link, and their next
// heartbeats ship the full knowledge snapshots that fold the joiner in;
// Cluster.AddNode wraps this for in-process fabrics.
func (n *Node) AnnounceJoin() error { return n.inner.AnnounceJoin() }

// AnnounceLeave removes a (stopped) member from the running cluster on
// its behalf: this node tombstones the leaver, bumps the membership
// epoch, and floods the announcement. Call it on any surviving member;
// Cluster.RemoveNode wraps this for in-process fabrics.
func (n *Node) AnnounceLeave(leaver NodeID) error { return n.inner.AnnounceLeave(leaver) }

// CrashEstimate returns the node's current estimate of process i's
// per-period crash probability and the estimate's distortion.
func (n *Node) CrashEstimate(i NodeID) (mean float64, distortion int) {
	return n.inner.CrashEstimate(i)
}

// LossEstimate returns the node's current estimate of a link's loss
// probability; ok is false while the link is still unknown to the node.
func (n *Node) LossEstimate(l Link) (mean float64, distortion int, ok bool) {
	return n.inner.LossEstimate(l)
}

// KnownLinks reports the links the node has discovered so far.
func (n *Node) KnownLinks() []Link { return n.inner.KnownLinks() }
