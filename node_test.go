package adaptivecast_test

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"adaptivecast"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// line2 builds a two-node line over a fresh fabric through the public
// constructors only.
func line2(t *testing.T, opts0, opts1 []adaptivecast.Option) (*adaptivecast.Fabric, *adaptivecast.Node, *adaptivecast.Node) {
	t.Helper()
	g, err := adaptivecast.Line(2)
	if err != nil {
		t.Fatal(err)
	}
	fabric := adaptivecast.NewFabric(adaptivecast.FabricOptions{})
	n0, err := adaptivecast.NewNode(fabric.Endpoint(0), 2, g.Neighbors(0), opts0...)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := adaptivecast.NewNode(fabric.Endpoint(1), 2, g.Neighbors(1), opts1...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = n0.Close()
		_ = n1.Close()
		_ = fabric.Close()
	})
	return fabric, n0, n1
}

// TestStableStorageOption drives the crash-recovery clock-mark protocol
// through WithStableStorage and WithClock: the node marks the storage on
// every tick, and a restarted incarnation books the downtime as missed
// periods, degrading its own crash estimate.
func TestStableStorageOption(t *testing.T) {
	g, err := adaptivecast.Line(2)
	if err != nil {
		t.Fatal(err)
	}
	fabric := adaptivecast.NewFabric(adaptivecast.FabricOptions{})
	defer func() { _ = fabric.Close() }()

	storage := &adaptivecast.MemStorage{}
	t0 := time.Now()
	first, err := adaptivecast.NewNode(fabric.Endpoint(0), 2, g.Neighbors(0),
		adaptivecast.WithStableStorage(storage),
		adaptivecast.WithHeartbeat(10*time.Millisecond),
		adaptivecast.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	freshMean, _ := first.CrashEstimate(0)
	first.Tick()
	if _, _, _, ok, err := storage.LoadMark(); err != nil || !ok {
		t.Fatalf("tick did not persist a clock mark (ok=%v err=%v)", ok, err)
	}
	_ = first.Close()

	// Restart 100 heartbeat periods later: the downtime must be booked as
	// missed ticks, raising the node's estimate of its own crash rate.
	second, err := adaptivecast.NewNode(fabric.Endpoint(0), 2, g.Neighbors(0),
		adaptivecast.WithStableStorage(storage),
		adaptivecast.WithHeartbeat(10*time.Millisecond),
		adaptivecast.WithClock(func() time.Time { return t0.Add(time.Second) }))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = second.Close() }()
	recoveredMean, _ := second.CrashEstimate(0)
	if recoveredMean <= freshMean {
		t.Errorf("recovered self crash estimate %v not above fresh %v", recoveredMean, freshMean)
	}
}

// TestExactlyOnceLogOption crashes a consumer and restarts it with its
// durable log via WithExactlyOnceLog: replays are suppressed, new events
// delivered.
func TestExactlyOnceLogOption(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "consumer.dedup")
	g, err := adaptivecast.Line(2)
	if err != nil {
		t.Fatal(err)
	}

	// First incarnation: deliver two events.
	fabric := adaptivecast.NewFabric(adaptivecast.FabricOptions{})
	dlog, err := adaptivecast.OpenExactlyOnceLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := adaptivecast.NewNode(fabric.Endpoint(0), 2, g.Neighbors(0))
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := adaptivecast.NewNode(fabric.Endpoint(1), 2, g.Neighbors(1),
		adaptivecast.WithExactlyOnceLog(dlog))
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{"event-1", "event-2"} {
		if _, err := producer.Broadcast([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return consumer.Stats().Delivered == 2 },
		"consumer never delivered the first two events")
	_ = consumer.Close()
	_ = producer.Close()
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: the producer restarts too and replays seqs 1-2
	// before sending a fresh event 3.
	fabric2 := adaptivecast.NewFabric(adaptivecast.FabricOptions{})
	defer func() { _ = fabric2.Close() }()
	dlog2, err := adaptivecast.OpenExactlyOnceLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dlog2.Close() }()
	producer2, err := adaptivecast.NewNode(fabric2.Endpoint(0), 2, g.Neighbors(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = producer2.Close() }()
	consumer2, err := adaptivecast.NewNode(fabric2.Endpoint(1), 2, g.Neighbors(1),
		adaptivecast.WithExactlyOnceLog(dlog2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = consumer2.Close() }()
	for _, body := range []string{"event-1", "event-2", "event-3"} {
		if _, err := producer2.Broadcast([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := consumer2.Stats()
		return st.SuppressedReplays == 2 && st.Delivered == 1
	}, "replays not suppressed exactly-once across the crash")
}

// TestPiggybackOption shows WithPiggyback spreading knowledge on data
// frames: a node that never heard a heartbeat about process 0 still
// refines its estimate when a piggybacked broadcast passes through.
func TestPiggybackOption(t *testing.T) {
	for _, piggyback := range []bool{true, false} {
		g, err := adaptivecast.Line(3) // 0 — 1 — 2
		if err != nil {
			t.Fatal(err)
		}
		fabric := adaptivecast.NewFabric(adaptivecast.FabricOptions{})
		var opts1 []adaptivecast.Option
		if piggyback {
			opts1 = append(opts1, adaptivecast.WithPiggyback())
		}
		nodes := make([]*adaptivecast.Node, 3)
		for i := range nodes {
			var opts []adaptivecast.Option
			if i == 1 {
				opts = opts1
			}
			nd, err := adaptivecast.NewNode(fabric.Endpoint(adaptivecast.NodeID(i)), 3,
				g.Neighbors(adaptivecast.NodeID(i)), opts...)
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = nd
		}

		// Node 0 heartbeats its only neighbor (node 1); node 2 hears
		// nothing about process 0 directly.
		nodes[0].Tick()
		waitFor(t, 5*time.Second, func() bool { return nodes[1].Stats().HeartbeatsReceived == 1 },
			"node 1 never received node 0's heartbeat")
		_, distBefore := nodes[2].CrashEstimate(0)

		// Node 1 broadcasts; with piggybacking the data frame carries its
		// merged view, including node 0's fresher self-estimate.
		if _, err := nodes[1].Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool { return nodes[2].Stats().Delivered == 1 },
			"node 2 never delivered the broadcast")
		_, distAfter := nodes[2].CrashEstimate(0)

		if piggyback && distAfter >= distBefore {
			t.Errorf("piggyback: distortion of node 0's estimate did not improve (%d -> %d)",
				distBefore, distAfter)
		}
		if !piggyback && distAfter != distBefore {
			t.Errorf("no piggyback: distortion changed without knowledge flow (%d -> %d)",
				distBefore, distAfter)
		}

		for _, nd := range nodes {
			_ = nd.Close()
		}
		_ = fabric.Close()
	}
}

// TestSubscribeBackpressure verifies the documented overload behavior: a
// subscriber that stalls past the delivery buffer causes further
// deliveries to be dropped, counted, and reported to the observer.
func TestSubscribeBackpressure(t *testing.T) {
	var dropped atomic.Int64
	_, n0, _ := line2(t,
		[]adaptivecast.Option{
			adaptivecast.WithDeliveryBuffer(1),
			adaptivecast.WithObserver(adaptivecast.Observer{
				OnDrop: func(adaptivecast.Delivery) { dropped.Add(1) },
			}),
		}, nil)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var handled atomic.Int64
	cancel := n0.Subscribe(func(adaptivecast.Delivery) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		handled.Add(1)
	})
	defer cancel()

	// First broadcast occupies the handler...
	if _, err := n0.Broadcast([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...the second fills the 1-slot buffer, the next 8 must drop.
	for i := 0; i < 9; i++ {
		if _, err := n0.Broadcast([]byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return n0.Stats().DroppedDeliveries == 8 },
		"expected exactly 8 dropped deliveries")
	if got := dropped.Load(); got != 8 {
		t.Errorf("observer saw %d drops, want 8", got)
	}

	// Release the subscriber: the two accepted deliveries drain.
	close(gate)
	waitFor(t, 5*time.Second, func() bool { return handled.Load() == 2 },
		"accepted deliveries did not drain after the stall")
}

// TestObserverDeliverAndTreeRebuild checks the remaining observer hooks:
// OnDeliver on every queued delivery and OnTreeRebuild when a broadcast
// plans a fresh MRT.
func TestObserverDeliverAndTreeRebuild(t *testing.T) {
	var delivers atomic.Int64
	var rebuild atomic.Value
	_, n0, n1 := line2(t, []adaptivecast.Option{
		adaptivecast.WithObserver(adaptivecast.Observer{
			OnDeliver:     func(adaptivecast.Delivery) { delivers.Add(1) },
			OnTreeRebuild: func(tr adaptivecast.TreeRebuild) { rebuild.Store(tr) },
		}),
	}, nil)

	// Exchange enough heartbeats for node 0's view to span the line.
	for i := 0; i < 10; i++ {
		n0.Tick()
		n1.Tick()
		time.Sleep(2 * time.Millisecond)
	}

	r, err := n0.Broadcast([]byte("observed"))
	if err != nil {
		t.Fatal(err)
	}
	if delivers.Load() != 1 {
		t.Errorf("OnDeliver fired %d times for the local delivery, want 1", delivers.Load())
	}
	tr, ok := rebuild.Load().(adaptivecast.TreeRebuild)
	if !ok {
		t.Fatal("OnTreeRebuild never fired")
	}
	if tr.Seq != r.Seq || tr.Edges != 1 || tr.Planned != r.Planned {
		t.Errorf("TreeRebuild = %+v, want seq %d, 1 edge, planned %d", tr, r.Seq, r.Planned)
	}
	if r.Planned < 1 {
		t.Errorf("planned = %d, want >= 1", r.Planned)
	}
}

// TestBroadcastCtx covers both sides of the context-aware broadcast.
func TestBroadcastCtx(t *testing.T) {
	_, n0, _ := line2(t, nil, nil)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n0.BroadcastCtx(cancelled, []byte("late")); err == nil {
		t.Error("cancelled context should fail the broadcast")
	}

	r, err := n0.BroadcastCtx(context.Background(), []byte("on time"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Origin != 0 || r.Seq == 0 {
		t.Errorf("receipt = %+v, want origin 0 and a sequence number", r)
	}
}

// TestSubscribeCancel verifies that a cancelled subscription stops
// receiving while others keep going.
func TestSubscribeCancel(t *testing.T) {
	_, n0, _ := line2(t, nil, nil)

	var a, b atomic.Int64
	cancelA := n0.Subscribe(func(adaptivecast.Delivery) { a.Add(1) })
	n0.Subscribe(func(adaptivecast.Delivery) { b.Add(1) })

	if _, err := n0.Broadcast([]byte("first")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return a.Load() == 1 && b.Load() == 1 },
		"both subscribers should see the first broadcast")

	cancelA()
	if _, err := n0.Broadcast([]byte("second")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return b.Load() == 2 },
		"remaining subscriber should see the second broadcast")
	if a.Load() != 1 {
		t.Errorf("cancelled subscriber saw %d deliveries, want 1", a.Load())
	}
}

// TestWithPlanCacheOption checks the public wiring of the plan cache:
// enabled by default (repeated same-view broadcasts count hits), and
// fully off under WithPlanCache(false).
func TestWithPlanCacheOption(t *testing.T) {
	_, n0, _ := line2(t, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := n0.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := n0.Stats()
	if st.PlanCacheHits+st.PlanCacheMisses != 3 {
		t.Errorf("default node: hits %d + misses %d, want 3 planned broadcasts counted",
			st.PlanCacheHits, st.PlanCacheMisses)
	}
	if st.PlanCacheHits < 2 {
		t.Errorf("default node: PlanCacheHits = %d, want >= 2 for an unchanged view", st.PlanCacheHits)
	}

	_, off, _ := line2(t, []adaptivecast.Option{adaptivecast.WithPlanCache(false)}, nil)
	for i := 0; i < 3; i++ {
		if _, err := off.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st = off.Stats()
	if st.PlanCacheHits != 0 || st.PlanCacheMisses != 0 {
		t.Errorf("WithPlanCache(false): cache counters moved: %+v", st)
	}
}
