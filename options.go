package adaptivecast

import (
	"time"

	"adaptivecast/internal/dedup"
	"adaptivecast/internal/knowledge"
	"adaptivecast/internal/node"
)

// StableStorage persists the periodic clock mark the paper uses to
// estimate a process's own crash probability (Section 4.1): the process
// writes the current time every heartbeat period; after a crash it
// compares the last mark with the clock to count the missed intervals.
// The broadcast sequence floor and the last stable adaptive-cadence
// intervals ride along on the same record, so a restarted node neither
// reuses sequence numbers nor re-learns its heartbeat stretch from
// scratch.
type StableStorage = node.StableStorage

// MemStorage is an in-memory StableStorage for tests and single-process
// crash/recovery simulations. The zero value is ready to use.
type MemStorage = node.MemStorage

// NewFileStorage returns StableStorage backed by a small text file — the
// minimal stable storage the paper's crash/recovery model requires.
func NewFileStorage(path string) StableStorage { return node.NewFileStorage(path) }

// ExactlyOnceLog is the durable delivered-set that upgrades delivery to
// exactly-once across crashes (the paper's Section 2.2 local-logging
// construction): every delivery is recorded before it reaches the
// application, so a recovered node suppresses redeliveries of broadcasts
// it already acknowledged.
type ExactlyOnceLog = dedup.Log

// OpenExactlyOnceLog loads (creating if needed) a file-backed
// exactly-once log.
func OpenExactlyOnceLog(path string) (*ExactlyOnceLog, error) { return dedup.Open(path) }

// NewVolatileExactlyOnceLog returns an in-memory log (no crash survival)
// for tests and callers that only want the in-memory dedup semantics.
func NewVolatileExactlyOnceLog() *ExactlyOnceLog { return dedup.NewVolatile() }

// TreeRebuild describes one Maximum Reliability Tree planned for a
// broadcast: the broadcast's sequence number, the tree's edge count, and
// the planned data-message total Σ m[j].
type TreeRebuild struct {
	Seq     uint64
	Edges   int
	Planned int
}

// Observer receives instrumentation callbacks from a Node. Callbacks run
// synchronously on protocol goroutines — keep them fast and non-blocking;
// nil fields are skipped.
type Observer struct {
	// OnDeliver fires after a delivery was queued for the application.
	OnDeliver func(Delivery)
	// OnDrop fires when a delivery is discarded because the delivery
	// buffer was full (also counted in NodeStats.DroppedDeliveries).
	OnDrop func(Delivery)
	// OnTreeRebuild fires when a broadcast plans a fresh MRT from the
	// node's current view. Broadcasts served from the plan cache reuse
	// the prior tree and do not fire it, and warm-up floods plan no tree
	// at all.
	OnTreeRebuild func(TreeRebuild)
}

// nodeConfig collects everything the functional options can set.
type nodeConfig struct {
	inner node.Config
	obs   Observer
	// adaptiveCadence is WithAdaptiveCadence's cap, kept as a duration
	// until every option has run: the conversion to whole heartbeat
	// periods needs the final δ, and options apply in caller order.
	adaptiveCadence time.Duration
}

// Option configures a Node at construction time.
type Option func(*nodeConfig)

// WithK sets the per-broadcast reliability target (default DefaultK).
func WithK(k float64) Option {
	return func(c *nodeConfig) { c.inner.K = k }
}

// WithHeartbeat sets δ, the knowledge-exchange period (default 1s; tests
// and examples often use a few milliseconds).
func WithHeartbeat(d time.Duration) Option {
	return func(c *nodeConfig) { c.inner.HeartbeatEvery = d }
}

// WithPiggyback attaches the node's knowledge snapshot to outgoing data
// frames (Section 4.1's bandwidth optimization): application traffic then
// spreads estimates in addition to heartbeats, at the cost of one
// snapshot serialization per hop per broadcast.
func WithPiggyback() Option {
	return func(c *nodeConfig) { c.inner.Piggyback = true }
}

// WithStableStorage enables the crash-recovery clock-mark protocol: the
// node marks the given storage every heartbeat period, and a restarted
// node books the downtime since the last mark as missed ticks, degrading
// its own crash estimate accordingly. When adaptive cadence is also on,
// the per-neighbor heartbeat stretch persists alongside the mark and a
// restarted node resumes it as soon as each neighbor proves stable
// again, instead of re-walking the geometric ramp.
func WithStableStorage(s StableStorage) Option {
	return func(c *nodeConfig) { c.inner.Storage = s }
}

// WithExactlyOnceLog upgrades delivery to exactly-once across crashes:
// deliveries are durably recorded in the log before reaching the
// application, and a restarted node suppresses replays of everything it
// acknowledged before the crash. The caller owns the log and must keep it
// open for the node's lifetime.
func WithExactlyOnceLog(l *ExactlyOnceLog) Option {
	return func(c *nodeConfig) { c.inner.DedupLog = l }
}

// WithPlanCache enables or disables the broadcast plan cache (default
// enabled). While enabled, the (MRT, allocation) plan computed for a
// broadcast is reused by subsequent broadcasts until the node's knowledge
// view changes — repeated same-view broadcasts cost an amortized cache
// lookup instead of a full replan. Cache effectiveness is observable via
// NodeStats.PlanCacheHits / PlanCacheMisses. Disabling it restores the
// replan-every-broadcast behavior (mainly for benchmarks and debugging).
func WithPlanCache(enabled bool) Option {
	return func(c *nodeConfig) { c.inner.DisablePlanCache = !enabled }
}

// WithDeltaHeartbeats enables or disables delta heartbeats (default
// enabled). While enabled, each heartbeat ships only the knowledge
// records that changed since the view version the receiving neighbor
// last acknowledged — acks ride the reverse heartbeats, so no extra
// messages are exchanged — with a full-snapshot fallback whenever the
// neighbor's acked version is unknown or predates this node's current
// incarnation. Once estimates converge, deltas shrink to a near-empty
// liveness header; effectiveness is observable via
// NodeStats.DeltaHeartbeatsSent / HeartbeatBytesSent. Disabling restores
// full-snapshot heartbeats on every period (benchmarks, or clusters with
// peers that predate the delta frame kind).
func WithDeltaHeartbeats(enabled bool) Option {
	return func(c *nodeConfig) { c.inner.DisableDeltaHeartbeats = !enabled }
}

// WithAdaptiveCadence stretches heartbeats for stable neighborhoods:
// once a neighbor's knowledge delta has been empty, anchored and
// suspicion-free for a few consecutive periods, that neighbor's
// heartbeat interval doubles geometrically (δ → 2δ → 4δ …) up to max,
// and snaps back to δ within one period of any change — a non-empty
// delta, a suspicion anywhere in the neighborhood, or a peer needing the
// full-snapshot fallback after a restart. In a converged cluster this
// cuts steady-state heartbeat *frame counts* by roughly δ/max (the
// frames themselves are already near-empty under delta heartbeats).
//
// The stretched interval rides the wire (the delta frame's Cadence
// field, wire version 2), and receivers scale their suspicion timeouts
// and sequence-gap loss accounting by the sender's declared cadence, so
// stretched neighbors are neither falsely suspected nor miscounted as
// lossy. The trade-off is failure-detection latency on stretched links:
// a crashed neighbor is suspected after timeout·cadence periods instead
// of timeout. max is rounded down to whole heartbeat periods (values
// below 2δ disable stretching); adaptive cadence requires delta
// heartbeats (the default) and peers that understand wire version 2.
func WithAdaptiveCadence(max time.Duration) Option {
	return func(c *nodeConfig) { c.adaptiveCadence = max }
}

// WithQuantizedBeliefs opts the node into the wire v4 quantized belief
// profile: estimator beliefs and refined-grid midpoints ship as uint16
// fixed-point codes over shared scales instead of float64s, shrinking a
// full knowledge snapshot roughly 3.8x at the default U=100 while
// keeping every decoded estimate within 1e-3 of the float value. The
// profile is negotiated per peer — a capability varint rides the first
// frame toward each neighbor (repeated with geometric backoff until the
// neighbor advertises back), and quantized frames flow only toward
// peers that advertised v4 themselves, so frames toward legacy peers
// stay byte-identical to wire v3 and mixed clusters interoperate.
// Negotiation progress is observable via
// NodeStats.QuantizedHeartbeatsSent. Off by default.
func WithQuantizedBeliefs() Option {
	return func(c *nodeConfig) { c.inner.QuantizedBeliefs = true }
}

// WithForwardCache sizes the forwarder tree cache (default 16 entries;
// size <= 0 disables it). Received data frames carry their routing tree
// as a parent vector; the cache lets a forwarder relaying repeated
// traffic down the same tree reuse one rebuilt tree instead of
// re-deriving it per frame. Effectiveness is observable via
// NodeStats.ForwardCacheHits / ForwardCacheMisses.
func WithForwardCache(size int) Option {
	return func(c *nodeConfig) {
		if size <= 0 {
			size = -1
		}
		c.inner.ForwardCacheSize = size
	}
}

// WithLaneScheduler enables or disables the per-peer prioritized lane
// scheduler (control > data > telemetry). It is ON by default: sends
// are asynchronous hand-offs to bounded per-peer queues,
// protocol-critical control frames (heartbeats, knowledge deltas,
// membership changes) are never shed and overtake queued data, and each
// peer's data drains in coalesced batches through the transport's
// multi-frame fast path. This is the high-throughput datapath: under
// broadcast saturation it keeps the knowledge plane's control traffic
// flowing at its usual latency while data throughput rises with
// batching. WithLaneScheduler(false) opts out and reverts every send to
// a synchronous transport call on the calling goroutine — the
// pre-scheduler behavior, for deterministic drivers or callers that
// need per-call send errors to surface inline. Scheduler behavior is
// observable via NodeStats.LaneDrops / CoalescedFlushes.
func WithLaneScheduler(enabled bool) Option {
	return func(c *nodeConfig) { c.inner.DisableLaneScheduler = !enabled }
}

// WithLaneQueueDepth bounds each peer's data lane when the lane
// scheduler is on (default 256 frames). At the high watermark new data
// frames are shed — counted in NodeStats.LaneDrops — which is the
// backpressure policy: shedding data protects the control plane, and
// the protocol's redundancy math already tolerates lost data copies.
// The control lane is never bounded.
func WithLaneQueueDepth(depth int) Option {
	return func(c *nodeConfig) { c.inner.LaneQueueDepth = depth }
}

// WithAggregationWindow holds queued data frames back up to w so that
// several broadcasts headed to the same peer coalesce into one
// transport flush (one syscall on TCP, one lock acquisition on the
// in-process fabric, however many frames the flush carries). 0 — the
// default — flushes as soon as the peer's drain goroutine reaches the
// frame; the window only applies with the lane scheduler on, and control
// frames are never held back. Coalescing effectiveness is observable
// via NodeStats.CoalescedFlushes / CoalescedFrames.
func WithAggregationWindow(w time.Duration) Option {
	return func(c *nodeConfig) { c.inner.AggregationWindow = w }
}

// WithDeliveryBuffer sizes the delivery buffer (default 128). When the
// application lags behind by more than the buffer, further deliveries are
// dropped and counted in NodeStats.DroppedDeliveries.
func WithDeliveryBuffer(size int) Option {
	return func(c *nodeConfig) { c.inner.DeliveryBuffer = size }
}

// WithObserver installs instrumentation callbacks.
func WithObserver(o Observer) Option {
	return func(c *nodeConfig) { c.obs = o }
}

// WithEpoch declares the initial membership epoch (default 0, the static
// cluster). A node constructed to join a running cluster sets the epoch
// of the membership change that admits it; its frames then ride wire
// version 3 with the epoch fence, and AnnounceJoin floods the change to
// the cluster. Epoch 0 keeps every frame byte-identical to pre-epoch
// peers.
func WithEpoch(epoch uint64) Option {
	return func(c *nodeConfig) { c.inner.Epoch = epoch }
}

// WithDeparted lists the processes already tombstoned as of the node's
// initial epoch (see WithEpoch), so a joiner's roster starts aligned with
// the running cluster instead of waiting for announcements.
func WithDeparted(ids ...NodeID) Option {
	return func(c *nodeConfig) { c.inner.Departed = append([]NodeID(nil), ids...) }
}

// WithBayesIntervals sets U, the Bayesian estimator precision (default
// 100, the paper's setting).
func WithBayesIntervals(u int) Option {
	return func(c *nodeConfig) { c.inner.Knowledge = knowledge.Params{Intervals: u} }
}

// WithClock injects a clock, letting tests drive the stable-storage
// crash-recovery accounting deterministically (default time.Now).
func WithClock(now func() time.Time) Option {
	return func(c *nodeConfig) { c.inner.Now = now }
}
