// Package scenario is the public facade over the adversarial scenario
// matrix: a fixed catalog of named hostile network conditions —
// correlated burst loss, asymmetric links, healing partitions, flapping
// links, skewed clocks, churn under loss, a byzantine peer replaying the
// fuzz corpus — each with a machine-checked acceptance predicate. Tools
// (cmd/scenariomatrix) and external users run the matrix through this
// import path; the checked-in SCENARIOS.json and the CI scenarios job
// are produced from exactly these entry points.
package scenario

import (
	iscenario "adaptivecast/internal/scenario"
)

// Re-exported scenario types.
type (
	// Figures are the measured outcomes of one scenario run.
	Figures = iscenario.Figures
	// Scenario is one named hostile condition with its acceptance
	// predicate.
	Scenario = iscenario.Scenario
	// Result is one scenario execution with its verdict.
	Result = iscenario.Result
)

// Matrix returns every scenario, sorted by name.
func Matrix() []Scenario { return iscenario.Matrix() }

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) { return iscenario.ByName(name) }

// Run executes one scenario with the given seed and checks its
// acceptance predicate. short trims period budgets for CI.
func Run(s Scenario, seed int64, short bool) Result { return iscenario.Run(s, seed, short) }

// RunAll executes the whole matrix with one seed.
func RunAll(seed int64, short bool) []Result { return iscenario.RunAll(seed, short) }
