package sim

import (
	"errors"
	"fmt"
	"time"

	"adaptivecast"
)

// ChurnEvent is one membership change in a churn schedule.
type ChurnEvent struct {
	// Period is the heartbeat period (tick index) the event fires at.
	Period int
	// Join adds a node linked to Neighbors; otherwise Node is removed.
	Join bool
	// Node is the leaver (leave events only; join IDs are assigned
	// densely by the cluster).
	Node NodeID
	// Neighbors are the joiner's links (join events only).
	Neighbors []NodeID
}

// ChurnConfig configures RunChurn.
type ChurnConfig struct {
	// Cluster is the base cluster configuration (Topology required). The
	// cluster is built, driven deterministically with Tick, and closed by
	// RunChurn.
	Cluster adaptivecast.ClusterConfig
	// Schedule lists the membership changes, in any order; events fire at
	// their period.
	Schedule []ChurnEvent
	// Periods is the total run length in heartbeat periods (default: last
	// event period + 16).
	Periods int
	// ProbeEvery broadcasts a probe from the lowest active member every
	// this many periods (default 8), measuring delivery under churn.
	ProbeEvery int
	// SettleDelay is the real-time drain pause per tick, letting the
	// in-process fabric's receive goroutines run (default 2ms).
	SettleDelay time.Duration
}

// ProbeResult records one probe broadcast's outcome.
type ProbeResult struct {
	// Period the probe was broadcast at, and its originating member.
	Period int
	Origin NodeID
	// Delivered counts the members (originator included — it self-
	// delivers) that delivered the probe by the end of the run; Expected
	// is the membership size three periods after the probe, the paper-
	// plus-epochs delivery bar RunChurn measures against.
	Delivered int
	Expected  int
}

// ChurnReport summarizes a churn run.
type ChurnReport struct {
	// Epoch is the final membership epoch; Active the final live member
	// count; NumProcs the final ID-space size.
	Epoch    uint64
	Active   int
	NumProcs int
	// Probes holds every probe's delivery outcome, in broadcast order.
	Probes []ProbeResult
}

// FullyDelivered reports whether every probe reached its whole expected
// membership.
func (r *ChurnReport) FullyDelivered() bool {
	for _, p := range r.Probes {
		if p.Delivered < p.Expected {
			return false
		}
	}
	return true
}

// RunChurn drives a cluster through a join/leave schedule, probing
// delivery along the way — the membership counterpart of the paper's
// convergence experiments, runnable against any topology and failure
// configuration the cluster accepts. Events fire between ticks; probes
// ride the adaptive broadcast exactly like application traffic. The run
// is deterministic up to goroutine scheduling (the fabric's loss sampling
// is seeded by the cluster configuration).
func RunChurn(cfg ChurnConfig) (*ChurnReport, error) {
	if cfg.Cluster.Topology == nil {
		return nil, errors.New("sim: churn needs a base topology")
	}
	probeEvery := cfg.ProbeEvery
	if probeEvery == 0 {
		probeEvery = 8
	}
	settle := cfg.SettleDelay
	if settle == 0 {
		settle = 2 * time.Millisecond
	}
	periods := cfg.Periods
	for _, ev := range cfg.Schedule {
		if ev.Period < 0 {
			return nil, fmt.Errorf("sim: churn event at negative period %d", ev.Period)
		}
		if ev.Period+16 > periods {
			periods = ev.Period + 16
		}
	}

	c, err := adaptivecast.NewCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	defer func() { _ = c.Close() }()

	type probe struct {
		ProbeResult
		body string
		seen map[NodeID]bool
	}
	var probes []*probe

	active := func() []NodeID {
		var out []NodeID
		g := c.Topology()
		for i := 0; i < g.NumNodes(); i++ {
			if g.Active(NodeID(i)) {
				out = append(out, NodeID(i))
			}
		}
		return out
	}
	drain := func() {
		for _, id := range active() {
		drainOne:
			for {
				select {
				case d := <-c.Deliveries(id):
					for _, p := range probes {
						if string(d.Body) == p.body && !p.seen[id] {
							p.seen[id] = true
							p.Delivered++
						}
					}
				default:
					break drainOne
				}
			}
		}
	}

	lastEvent := -4 // no fold window pending at start
	for period := 0; period < periods; period++ {
		for _, ev := range cfg.Schedule {
			if ev.Period != period {
				continue
			}
			if ev.Join {
				if _, err := c.AddNode(ev.Neighbors...); err != nil {
					return nil, fmt.Errorf("sim: churn join at period %d: %w", period, err)
				}
			} else if err := c.RemoveNode(ev.Node); err != nil {
				return nil, fmt.Errorf("sim: churn leave of %d at period %d: %w", ev.Node, period, err)
			}
			lastEvent = period
		}
		// Probes inside a fold window (a membership change in the last 3
		// periods) are skipped: a joiner is only promised delivery 3
		// periods after its announcement, so a probe racing the fold
		// would measure the promise the protocol never made.
		if period%probeEvery == 0 && period-lastEvent > 3 {
			members := active()
			origin := members[0]
			p := &probe{body: fmt.Sprintf("churn-probe-%d", period), seen: make(map[NodeID]bool)}
			p.Period, p.Origin = period, origin
			if _, _, err := c.Broadcast(origin, []byte(p.body)); err != nil {
				return nil, fmt.Errorf("sim: probe at period %d: %w", period, err)
			}
			probes = append(probes, p)
		}
		c.Tick()
		time.Sleep(settle)
		drain()
		// The delivery bar for each probe is the membership three periods
		// after it was sent: joiners mid-fold and members removed since
		// are not expected to hold it.
		for _, p := range probes {
			if period == p.Period+3 {
				p.Expected = len(active())
			}
		}
	}
	time.Sleep(settle)
	drain()

	report := &ChurnReport{
		Epoch:    c.Epoch(),
		Active:   len(active()),
		NumProcs: c.Topology().NumNodes(),
	}
	for _, p := range probes {
		if p.Expected == 0 {
			p.Expected = report.Active // probe within 3 periods of the end
		}
		report.Probes = append(report.Probes, p.ProbeResult)
	}
	return report, nil
}
