package sim_test

import (
	"testing"

	"adaptivecast"
	"adaptivecast/sim"
)

// TestRunChurnConvergesUnderMembershipChanges drives the churn harness
// end to end: a ring survives a join, a leave, and another join, with
// every probe broadcast reaching the full membership expected of it.
func TestRunChurnConvergesUnderMembershipChanges(t *testing.T) {
	ring, err := adaptivecast.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunChurn(sim.ChurnConfig{
		Cluster: adaptivecast.ClusterConfig{Topology: ring},
		Schedule: []sim.ChurnEvent{
			{Period: 16, Join: true, Neighbors: []sim.NodeID{0, 2}},
			{Period: 32, Node: 1},
			{Period: 48, Join: true, Neighbors: []sim.NodeID{0, 4}},
		},
		Periods: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Epoch != 3 {
		t.Errorf("final epoch = %d, want 3", report.Epoch)
	}
	if report.Active != 5 || report.NumProcs != 6 {
		t.Errorf("final membership = %d active of %d slots, want 5 of 6", report.Active, report.NumProcs)
	}
	if len(report.Probes) == 0 {
		t.Fatal("no probes broadcast")
	}
	if !report.FullyDelivered() {
		for _, p := range report.Probes {
			t.Logf("probe at period %d from %d: delivered %d of %d", p.Period, p.Origin, p.Delivered, p.Expected)
		}
		t.Error("some probe missed part of its expected membership")
	}
}

// TestRunChurnRejectsBadSchedules covers the input validation.
func TestRunChurnRejectsBadSchedules(t *testing.T) {
	if _, err := sim.RunChurn(sim.ChurnConfig{}); err == nil {
		t.Error("missing topology should fail")
	}
	ring, err := adaptivecast.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunChurn(sim.ChurnConfig{
		Cluster:  adaptivecast.ClusterConfig{Topology: ring},
		Schedule: []sim.ChurnEvent{{Period: -1, Node: 1}},
	})
	if err == nil {
		t.Error("negative event period should fail")
	}
}
