// Package sim is the public facade over the deterministic discrete-event
// simulation stack: the event engine, the probabilistic network model
// (per-process crash and per-link loss probabilities), the reference
// gossip baseline, and the adaptive-broadcast runner that drives the same
// algorithmic components as the live runtime. It exists so tools and
// external users can run paper-style experiments — convergence studies,
// algorithm comparisons, Monte-Carlo baselines — against a stable import
// path, without reaching into internal packages.
package sim

import (
	"math/rand"

	ibroadcast "adaptivecast/internal/broadcast"
	iconfig "adaptivecast/internal/config"
	igossip "adaptivecast/internal/gossip"
	iknowledge "adaptivecast/internal/knowledge"
	isim "adaptivecast/internal/sim"
	itopology "adaptivecast/internal/topology"
)

// Re-exported simulation types. The aliases are identical to the types
// the internal packages exchange, so values flow freely between this
// package, adaptivecast, and adaptivecast/experiments.
type (
	// NodeID identifies a simulated process (same type as
	// adaptivecast.NodeID).
	NodeID = itopology.NodeID
	// Graph is the system topology (same type as adaptivecast.Topology).
	Graph = itopology.Graph
	// Time is simulated time, in heartbeat periods.
	Time = isim.Time
	// Kind labels simulated messages (data, ack, heartbeat, control).
	Kind = isim.Kind
	// Message is one simulated message.
	Message = isim.Message
	// Engine is the deterministic event queue driving a simulation.
	Engine = isim.Engine
	// Network models the probabilistic environment over a Config.
	Network = isim.Network
	// Options tunes the network model.
	Options = isim.Options
	// Stats counts network-level events per kind and per link.
	Stats = isim.Stats
	// Config is the ground truth: a topology plus per-process crash and
	// per-link loss probabilities.
	Config = iconfig.Config
	// Runner drives one adaptive-broadcast process per node of a network.
	Runner = ibroadcast.Runner
	// RunnerOptions tunes the runner.
	RunnerOptions = ibroadcast.RunnerOptions
	// Proc is one simulated broadcast process.
	Proc = ibroadcast.Proc
	// MsgID identifies one simulated broadcast.
	MsgID = ibroadcast.MsgID
	// Delivery is one simulated broadcast handed to the sink.
	Delivery = ibroadcast.Delivery
	// Criterion decides when a view counts as converged to the truth.
	Criterion = iknowledge.Criterion
	// GossipOptions tunes the reference gossip baseline.
	GossipOptions = igossip.Options
	// GossipResult is one gossip run's cost.
	GossipResult = igossip.Result
	// GossipMeanResult averages gossip cost over Monte-Carlo runs.
	GossipMeanResult = igossip.MeanResult
)

// Message kinds used across the simulated protocols.
const (
	KindData      = isim.KindData
	KindAck       = isim.KindAck
	KindHeartbeat = isim.KindHeartbeat
	KindControl   = isim.KindControl
)

// DefaultK is the paper's reliability target (0.9999).
const DefaultK = ibroadcast.DefaultK

// DefaultCriterion is the convergence criterion used throughout the
// paper's evaluation.
var DefaultCriterion = iknowledge.DefaultCriterion

// NewEngine returns a deterministic event engine seeded for
// reproducibility.
func NewEngine(seed int64) *Engine { return isim.NewEngine(seed) }

// NewNetwork builds the probabilistic network model for a ground-truth
// configuration on the given engine.
func NewNetwork(eng *Engine, cfg *Config, opts Options) *Network {
	return isim.NewNetwork(eng, cfg, opts)
}

// NewRunner wires one adaptive process per node of the network; sink
// (optional) observes every delivery.
func NewRunner(net *Network, opts RunnerOptions, sink func(NodeID, Delivery)) (*Runner, error) {
	return ibroadcast.NewRunner(net, opts, sink)
}

// RandomConnected returns a random connected topology over n processes
// with `conn` links per process on average.
func RandomConnected(n, conn int, rng *rand.Rand) (*Graph, error) {
	return itopology.RandomConnected(n, conn, rng)
}

// Uniform returns the ground-truth configuration assigning every process
// the crash probability p and every link the loss probability l.
func Uniform(g *Graph, p, l float64) (*Config, error) { return iconfig.Uniform(g, p, l) }

// GossipRun executes one reference-gossip broadcast to quiescence.
func GossipRun(cfg *Config, root NodeID, rng *rand.Rand, opts GossipOptions) (GossipResult, error) {
	return igossip.Run(cfg, root, rng, opts)
}

// GossipMeanCost averages the reference gossip's cost over `runs`
// Monte-Carlo executions.
func GossipMeanCost(cfg *Config, root NodeID, rng *rand.Rand, runs int, opts GossipOptions) (GossipMeanResult, error) {
	return igossip.MeanCost(cfg, root, rng, runs, opts)
}
