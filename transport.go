package adaptivecast

import "adaptivecast/internal/transport"

// Transport moves opaque frames between protocol nodes. A Node works over
// any implementation; the package ships two — the in-process Fabric and
// TCP. Handlers are invoked on the transport's receive goroutine, one
// frame at a time per node, so node state machines see serialized input.
type Transport = transport.Transport

// Handler consumes one inbound frame. Implementations must not retain the
// frame slice after returning.
type Handler = transport.Handler

// Fabric is an in-process "network": it owns one endpoint per node and
// applies injectable per-link loss probabilities and latency, giving the
// live node stack the same probabilistic environment the paper's
// simulator models. Obtain per-node transports with Endpoint.
type Fabric = transport.Fabric

// FabricOptions tunes the in-process transport (seed, latency, queue
// size).
type FabricOptions = transport.FabricOptions

// FabricStats counts fabric-level events (sent, lost, overflows).
type FabricStats = transport.FabricStats

// NewFabric returns an empty in-process fabric. Endpoints are created on
// first use with Fabric.Endpoint and plug straight into NewNode.
func NewFabric(opts FabricOptions) *Fabric { return transport.NewFabric(opts) }

// TCP is a Transport over real sockets: length-prefixed frames preceded
// by a one-time hello identifying the sender. Connections are dialed on
// demand and cached; inbound frames from all connections are serialized
// through one dispatch goroutine.
type TCP = transport.TCP

// TCPOptions tunes the TCP transport (dial timeout, queue size).
type TCPOptions = transport.TCPOptions

// DialTCP starts a TCP transport for node `local`, listening on
// listenAddr (":0" picks an ephemeral port, see TCP.Addr) and able to
// reach the peers in the address book (peer ID → host:port). The book may
// be nil and extended later with TCP.AddPeer.
func DialTCP(local NodeID, listenAddr string, peers map[NodeID]string, opts TCPOptions) (*TCP, error) {
	return transport.NewTCP(local, listenAddr, peers, opts)
}
