package adaptivecast

import "adaptivecast/internal/transport"

// Transport moves opaque frames between protocol nodes. A Node works over
// any implementation; the package ships two — the in-process Fabric and
// TCP. Handlers are invoked on the transport's receive goroutine, one
// frame at a time per node, so node state machines see serialized input.
type Transport = transport.Transport

// Handler consumes one inbound frame. Implementations must not retain the
// frame slice after returning.
type Handler = transport.Handler

// BatchSender is the optional transport fast path for sending n logical
// copies of one frame more cheaply than n Send calls. The contract is
// that SendN(to, frame, n) behaves exactly like n independent Sends — the
// receiver's handler runs once per surviving copy and probabilistic
// transports sample loss per copy — while the transport is free to batch
// the work (the built-in Fabric delivers all copies from one queue
// enqueue; TCP coalesces them into a single socket flush). Custom
// transports need not implement it: the protocol always goes through
// SendN, which falls back to looping Send.
type BatchSender = transport.BatchSender

// SendN transmits n logical copies of frame to one peer, using the
// transport's BatchSender fast path when present and a best-effort loop
// of Send calls otherwise. It reports how many copies were handed to the
// transport (a batching transport is all-or-nothing; the fallback loop
// attempts every copy), with the last failure when sent < n.
func SendN(t Transport, to NodeID, frame []byte, n int) (sent int, err error) {
	return transport.SendN(t, to, frame, n)
}

// Fabric is an in-process "network": it owns one endpoint per node and
// applies injectable per-link loss probabilities and latency, giving the
// live node stack the same probabilistic environment the paper's
// simulator models. Obtain per-node transports with Endpoint.
type Fabric = transport.Fabric

// FabricOptions tunes the in-process transport (seed, latency, queue
// size).
type FabricOptions = transport.FabricOptions

// FabricStats counts fabric-level events (sent, lost, overflows).
type FabricStats = transport.FabricStats

// NewFabric returns an empty in-process fabric. Endpoints are created on
// first use with Fabric.Endpoint and plug straight into NewNode.
func NewFabric(opts FabricOptions) *Fabric { return transport.NewFabric(opts) }

// TCP is a Transport over real sockets: length-prefixed frames preceded
// by a one-time hello identifying the sender. Connections are dialed on
// demand and cached; inbound frames from all connections are serialized
// through one dispatch goroutine.
type TCP = transport.TCP

// TCPOptions tunes the TCP transport (dial timeout, queue size).
type TCPOptions = transport.TCPOptions

// TCPStats counts a TCP transport's outbound work (socket flushes,
// frames, bytes); see TCP.Stats. One SendN batch costs one flush.
type TCPStats = transport.TCPStats

// DialTCP starts a TCP transport for node `local`, listening on
// listenAddr (":0" picks an ephemeral port, see TCP.Addr) and able to
// reach the peers in the address book (peer ID → host:port). The book may
// be nil and extended later with TCP.AddPeer.
func DialTCP(local NodeID, listenAddr string, peers map[NodeID]string, opts TCPOptions) (*TCP, error) {
	return transport.NewTCP(local, listenAddr, peers, opts)
}
