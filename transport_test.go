package adaptivecast_test

import (
	"context"
	"testing"
	"time"

	"adaptivecast"
)

// TestTCPRoundTripPublicAPI runs a two-node broadcast over real sockets
// through the public constructors only: adaptivecast.DialTCP for the
// transports, adaptivecast.NewNode for the processes, and Subscribe for
// delivery on both ends.
func TestTCPRoundTripPublicAPI(t *testing.T) {
	g, err := adaptivecast.Line(2)
	if err != nil {
		t.Fatal(err)
	}

	tr0, err := adaptivecast.DialTCP(0, "127.0.0.1:0", nil, adaptivecast.TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr0.Close() }()
	tr1, err := adaptivecast.DialTCP(1, "127.0.0.1:0", nil, adaptivecast.TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr1.Close() }()
	tr0.AddPeer(1, tr1.Addr().String())
	tr1.AddPeer(0, tr0.Addr().String())

	n0, err := adaptivecast.NewNode(tr0, 2, g.Neighbors(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n0.Close() }()
	n1, err := adaptivecast.NewNode(tr1, 2, g.Neighbors(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n1.Close() }()

	got0 := make(chan adaptivecast.Delivery, 1)
	got1 := make(chan adaptivecast.Delivery, 1)
	n0.Subscribe(func(d adaptivecast.Delivery) { got0 <- d })
	n1.Subscribe(func(d adaptivecast.Delivery) { got1 <- d })

	// Exchange heartbeats deterministically so the broadcast can ride an
	// MRT rather than a warm-up flood.
	for i := 0; i < 10; i++ {
		n0.Tick()
		n1.Tick()
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r, err := n0.BroadcastCtx(ctx, []byte("over the wire"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Origin != 0 || r.Seq != 1 {
		t.Errorf("receipt = %+v, want origin 0 seq 1", r)
	}

	for name, ch := range map[string]chan adaptivecast.Delivery{"node 0": got0, "node 1": got1} {
		select {
		case d := <-ch:
			if string(d.Body) != "over the wire" || d.Origin != 0 {
				t.Errorf("%s delivered %+v", name, d)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s never delivered", name)
		}
	}
}
